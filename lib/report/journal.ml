type record = {
  r_command : string;
  r_case : string;
  r_index : int;
  r_oracle : string;
  r_seed : int;
  r_run_seed : int option;
  r_signature : string;
  r_detail : string;
  r_repro : string option;
  r_sim_s : float option;
  r_tables_digest : string;
}

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

let normalize s =
  let b = Buffer.create (String.length s) in
  let in_digits = ref false in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> if not !in_digits then (Buffer.add_char b '#'; in_digits := true)
      | c ->
          in_digits := false;
          Buffer.add_char b c)
    s;
  Buffer.contents b

let exn_constructor s =
  let s = String.trim s in
  let cut =
    match (String.index_opt s '(', String.index_opt s ' ') with
    | Some i, Some j -> min i j
    | Some i, None | None, Some i -> i
    | None, None -> String.length s
  in
  String.sub s 0 cut

let signature_of ~oracle ~diagnosis =
  let h = Digest.string (oracle ^ "\x00" ^ normalize diagnosis) in
  String.sub (Digest.to_hex h) 0 12

let digest_of_tables tables =
  Digest.to_hex (Digest.bytes (Vw_fsl.Tables_codec.to_bytes tables))

let v ?run_seed ?repro ?sim_s ?(tables_digest = "") ~command ~case ~index
    ~oracle ~seed ~detail () =
  let detail = first_line detail in
  {
    r_command = command;
    r_case = case;
    r_index = index;
    r_oracle = oracle;
    r_seed = seed;
    r_run_seed = run_seed;
    r_signature = signature_of ~oracle ~diagnosis:detail;
    r_detail = detail;
    r_repro = repro;
    r_sim_s = sim_s;
    r_tables_digest = tables_digest;
  }

(* --- JSON (schema "vw-failures/1") --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"schema\":\"vw-failures/1\"";
  add ",\"command\":\"%s\"" (json_escape r.r_command);
  add ",\"case\":\"%s\"" (json_escape r.r_case);
  add ",\"index\":%d" r.r_index;
  add ",\"oracle\":\"%s\"" (json_escape r.r_oracle);
  add ",\"seed\":%d" r.r_seed;
  (match r.r_run_seed with
  | Some s -> add ",\"run_seed\":%d" s
  | None -> ());
  add ",\"signature\":\"%s\"" (json_escape r.r_signature);
  add ",\"detail\":\"%s\"" (json_escape r.r_detail);
  (match r.r_repro with
  | Some p -> add ",\"repro\":\"%s\"" (json_escape p)
  | None -> ());
  (match r.r_sim_s with Some t -> add ",\"sim_s\":%.6f" t | None -> ());
  add ",\"tables_digest\":\"%s\"" (json_escape r.r_tables_digest);
  add "}\n";
  Buffer.contents b

let of_json json =
  let str key = Option.bind (Json.mem key json) Json.to_string in
  let int key = Option.bind (Json.mem key json) Json.to_int in
  let flt key = Option.bind (Json.mem key json) Json.to_float in
  match str "schema" with
  | Some "vw-failures/1" -> (
      match
        (str "command", str "case", int "index", str "oracle", int "seed",
         str "signature", str "detail")
      with
      | ( Some r_command,
          Some r_case,
          Some r_index,
          Some r_oracle,
          Some r_seed,
          Some r_signature,
          Some r_detail ) ->
          Ok
            {
              r_command;
              r_case;
              r_index;
              r_oracle;
              r_seed;
              r_run_seed = int "run_seed";
              r_signature;
              r_detail;
              r_repro = str "repro";
              r_sim_s = flt "sim_s";
              r_tables_digest = Option.value (str "tables_digest") ~default:"";
            }
      | _ -> Error "vw-failures/1 record is missing a required field")
  | Some other -> Error (Printf.sprintf "expected vw-failures/1, got %s" other)
  | None -> Error "record has no schema tag"

let append path records =
  match
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> List.iter (fun r -> output_string oc (to_json r)) records)
  with
  | () -> Ok ()
  | exception Sys_error e -> Error e

let load path =
  match
    try Ok (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error e -> Error e
  with
  | Error e -> Error e
  | Ok text ->
      let lines = String.split_on_char '\n' text in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest when String.trim line = "" -> go (n + 1) acc rest
        | line :: rest -> (
            match Result.bind (Json.parse line) of_json with
            | Ok r -> go (n + 1) (r :: acc) rest
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path n e))
      in
      go 1 [] lines
