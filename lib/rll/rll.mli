(** RLL — the Reliable Link Layer of Section 3.3.

    "VirtualWire implements a Reliable Link Layer (RLL) to prevent MAC layer
    bit errors from causing a packet drop when the FIE/FAE is unaware of the
    packet loss. The RLL guarantees reliable delivery of packets handed over
    to it by the VirtualWire layer, and is based on a simple sliding window
    protocol."

    RLL installs as a hook pair at priority {!Vw_stack.Hook.priority_rll}
    (below VirtualWire's on both paths). Outgoing unicast frames are
    encapsulated in RLL frames (ethertype 0x88B5) carrying a per-peer
    32-bit sequence number; receivers deliver in order, buffer
    out-of-window-order arrivals, and return cumulative acks. Senders keep a
    sliding window per peer and retransmit on timeout. Broadcast frames
    bypass RLL unmodified (no reliable broadcast on Ethernet).

    The encapsulation itself is what Figure 7 measures: RLL acks for both
    TCP data and TCP acks add reverse-direction frames, raising collision
    odds at high offered load. *)

type config = {
  window : int;  (** sender window, frames *)
  retransmit_timeout : Vw_sim.Simtime.t;  (** per-peer RTO (jiffy-rounded) *)
  max_retries : int;
      (** retransmissions before a frame is abandoned (peer presumed dead) *)
  go_back_n : bool;
      (** on timeout, resend the whole window instead of just its base
          (ablation knob; default false — see EXPERIMENTS.md) *)
}

val default_config : config
(** window 8, RTO 20 ms, 10 retries, base-only retransmission. *)

type stats = {
  mutable data_sent : int;  (** first transmissions of encapsulated frames *)
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable delivered : int;  (** frames decapsulated and passed up, in order *)
  mutable duplicates : int;  (** retransmitted frames already delivered *)
  mutable abandoned : int;  (** frames dropped after [max_retries] *)
}

type t

val install : ?config:config -> Vw_stack.Host.t -> t
(** Adds the RLL hooks to the host. All hosts of a testbed should either run
    RLL or not — mixed deployments deliver nothing between mixed pairs. *)

val uninstall : t -> unit
val stats : t -> stats
val in_flight : t -> int
(** Total unacknowledged frames across peers. *)
