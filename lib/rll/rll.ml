let src = Logs.Src.create "vw.rll" ~doc:"Reliable Link Layer"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  window : int;
  retransmit_timeout : Vw_sim.Simtime.t;
  max_retries : int;
  go_back_n : bool;
}

let default_config =
  {
    window = 8;
    retransmit_timeout = Vw_sim.Simtime.ms 20;
    max_retries = 10;
    go_back_n = false;
  }

type stats = {
  mutable data_sent : int;
  mutable retransmissions : int;
  mutable acks_sent : int;
  mutable delivered : int;
  mutable duplicates : int;
  mutable abandoned : int;
}

(* Wire format of the RLL payload:
   byte 0        kind: 0 = data, 1 = ack
   bytes 1..4    sequence number (data: frame seq; ack: cumulative next expected)
   bytes 5..6    encapsulated ethertype (data only)
   bytes 7..     encapsulated payload (data only) *)

let kind_data = 0
let kind_ack = 1
let header_size = 7

type sender_state = {
  mutable next_seq : int;
  mutable unacked : (int * Vw_net.Eth.t) list; (* ascending seq; |..| <= window *)
  pending : Vw_net.Eth.t Queue.t; (* waiting for window space *)
  mutable retries : int;
  mutable timer : Vw_stack.Host.timer option;
  mutable dup_acks : int; (* consecutive acks that moved nothing *)
}

type receiver_state = {
  mutable expected : int;
  ooo : (int, Vw_net.Eth.t) Hashtbl.t; (* out-of-order arrivals *)
}

type t = {
  host : Vw_stack.Host.t;
  config : config;
  stats : stats;
  senders : (Vw_net.Mac.t, sender_state) Hashtbl.t;
  receivers : (Vw_net.Mac.t, receiver_state) Hashtbl.t;
  mutable egress_hook : Vw_stack.Host.hook_id option;
  mutable ingress_hook : Vw_stack.Host.hook_id option;
}

let stats t = t.stats

let in_flight t =
  Hashtbl.fold (fun _ s acc -> acc + List.length s.unacked) t.senders 0

let sender_for t peer =
  match Hashtbl.find_opt t.senders peer with
  | Some s -> s
  | None ->
      let s =
        {
          next_seq = 0;
          unacked = [];
          pending = Queue.create ();
          retries = 0;
          timer = None;
          dup_acks = 0;
        }
      in
      Hashtbl.replace t.senders peer s;
      s

let receiver_for t peer =
  match Hashtbl.find_opt t.receivers peer with
  | Some r -> r
  | None ->
      let r = { expected = 0; ooo = Hashtbl.create 16 } in
      Hashtbl.replace t.receivers peer r;
      r

let encapsulate ~seq (frame : Vw_net.Eth.t) =
  let payload = Bytes.create (header_size + Bytes.length frame.payload) in
  Bytes.set payload 0 (Char.chr kind_data);
  Vw_util.Hexutil.set_int_be payload ~pos:1 ~len:4 (seq land 0xFFFFFFFF);
  Vw_util.Hexutil.set_int_be payload ~pos:5 ~len:2 frame.ethertype;
  Bytes.blit frame.payload 0 payload header_size (Bytes.length frame.payload);
  Vw_net.Eth.make ~dst:frame.dst ~src:frame.src
    ~ethertype:Vw_net.Eth.ethertype_rll payload

(* Transmit below the RLL hook so the frame is not re-encapsulated. *)
let transmit_below t frame =
  Vw_stack.Host.reinject t.host Vw_stack.Hook.Egress
    ~from_priority:Vw_stack.Hook.priority_rll frame

let send_ack t ~peer ~next_expected =
  let payload = Bytes.create 5 in
  Bytes.set payload 0 (Char.chr kind_ack);
  Vw_util.Hexutil.set_int_be payload ~pos:1 ~len:4 (next_expected land 0xFFFFFFFF);
  let frame =
    Vw_net.Eth.make ~dst:peer
      ~src:(Vw_stack.Host.mac t.host)
      ~ethertype:Vw_net.Eth.ethertype_rll payload
  in
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  transmit_below t frame

let rec arm_timer t peer s =
  (match s.timer with
  | Some timer -> Vw_stack.Host.cancel_timer t.host timer
  | None -> ());
  if s.unacked = [] then s.timer <- None
  else
    s.timer <-
      Some
        (Vw_stack.Host.set_timer t.host ~delay:t.config.retransmit_timeout
           (fun () -> on_timeout t peer s))

and on_timeout t peer s =
  match s.unacked with
  | [] -> s.timer <- None
  | (base_seq, _) :: _ ->
      s.retries <- s.retries + 1;
      if s.retries > t.config.max_retries then begin
        (* Peer presumed dead for this frame: abandon the window base so the
           layer cannot wedge forever behind a crashed node. *)
        t.stats.abandoned <- t.stats.abandoned + 1;
        Log.debug (fun m ->
            m "%s: RLL abandoning seq %d to %s"
              (Vw_stack.Host.name t.host)
              base_seq (Vw_net.Mac.to_string peer));
        (match s.unacked with [] -> () | _ :: rest -> s.unacked <- rest);
        s.retries <- 0;
        refill_window t peer s;
        arm_timer t peer s
      end
      else begin
        (* Default: retransmit only the window base; a cumulative ack for
           it confirms or re-triggers the rest. The go-back-N variant
           resends the whole window — kept as an ablation knob because it
           melts down once queueing delay approaches the timeout (see
           bench/main.exe ablation). *)
        (if t.config.go_back_n then
           List.iter
             (fun (seq, frame) ->
               t.stats.retransmissions <- t.stats.retransmissions + 1;
               transmit_below t (encapsulate ~seq frame))
             s.unacked
         else
           match s.unacked with
           | (seq, frame) :: _ ->
               t.stats.retransmissions <- t.stats.retransmissions + 1;
               transmit_below t (encapsulate ~seq frame)
           | [] -> ());
        arm_timer t peer s
      end

and refill_window t peer s =
  while
    List.length s.unacked < t.config.window && not (Queue.is_empty s.pending)
  do
    let frame = Queue.pop s.pending in
    let seq = s.next_seq in
    s.next_seq <- s.next_seq + 1;
    s.unacked <- s.unacked @ [ (seq, frame) ];
    t.stats.data_sent <- t.stats.data_sent + 1;
    transmit_below t (encapsulate ~seq frame)
  done;
  ignore peer

let on_ack t peer next_expected =
  let s = sender_for t peer in
  let before = List.length s.unacked in
  s.unacked <- List.filter (fun (seq, _) -> seq >= next_expected) s.unacked;
  if List.length s.unacked < before then begin
    s.retries <- 0;
    s.dup_acks <- 0;
    refill_window t peer s;
    arm_timer t peer s
  end
  else begin
    (* A duplicate cumulative ack: the receiver is getting frames beyond a
       hole. Three in a row mean the base is lost — repair it now instead
       of stalling a full retransmission timeout. *)
    match s.unacked with
    | (seq, frame) :: _ ->
        s.dup_acks <- s.dup_acks + 1;
        if s.dup_acks = 3 then begin
          s.dup_acks <- 0;
          t.stats.retransmissions <- t.stats.retransmissions + 1;
          transmit_below t (encapsulate ~seq frame);
          arm_timer t peer s
        end
    | [] -> ()
  end

let rec deliver_in_order t r peer =
  match Hashtbl.find_opt r.ooo r.expected with
  | Some frame ->
      Hashtbl.remove r.ooo r.expected;
      r.expected <- r.expected + 1;
      t.stats.delivered <- t.stats.delivered + 1;
      Vw_stack.Host.reinject t.host Vw_stack.Hook.Ingress
        ~from_priority:Vw_stack.Hook.priority_rll frame;
      deliver_in_order t r peer
  | None -> ()

let on_data t peer seq ~ethertype ~payload ~dst ~src =
  let r = receiver_for t peer in
  if seq < r.expected then t.stats.duplicates <- t.stats.duplicates + 1
  else if not (Hashtbl.mem r.ooo seq) && Hashtbl.length r.ooo < 1024 then
    Hashtbl.replace r.ooo seq
      (Vw_net.Eth.make ~dst ~src ~ethertype payload);
  deliver_in_order t r peer;
  send_ack t ~peer ~next_expected:r.expected

let egress_handler t (frame : Vw_net.Eth.t) =
  if Vw_net.Mac.is_broadcast frame.dst then Vw_stack.Hook.Accept frame
  else if frame.ethertype = Vw_net.Eth.ethertype_rll then
    (* Already RLL (e.g. a re-entrant path); let it through untouched. *)
    Vw_stack.Hook.Accept frame
  else begin
    let s = sender_for t frame.dst in
    if List.length s.unacked < t.config.window then begin
      let seq = s.next_seq in
      s.next_seq <- s.next_seq + 1;
      s.unacked <- s.unacked @ [ (seq, frame) ];
      t.stats.data_sent <- t.stats.data_sent + 1;
      transmit_below t (encapsulate ~seq frame);
      if s.timer = None then arm_timer t frame.dst s
    end
    else Queue.add frame s.pending;
    Vw_stack.Hook.Stolen
  end

let ingress_handler t (frame : Vw_net.Eth.t) =
  if frame.ethertype <> Vw_net.Eth.ethertype_rll then Vw_stack.Hook.Accept frame
  else begin
    let p = frame.payload in
    (if Bytes.length p >= 5 then
       let kind = Char.code (Bytes.get p 0) in
       let seq = Vw_util.Hexutil.to_int_be p ~pos:1 ~len:4 in
       if kind = kind_ack then on_ack t frame.src seq
       else if kind = kind_data && Bytes.length p >= header_size then begin
         let ethertype = Vw_util.Hexutil.to_int_be p ~pos:5 ~len:2 in
         let payload = Bytes.sub p header_size (Bytes.length p - header_size) in
         on_data t frame.src seq ~ethertype ~payload ~dst:frame.dst
           ~src:frame.src
       end);
    Vw_stack.Hook.Stolen
  end

let install ?(config = default_config) host =
  let t =
    {
      host;
      config;
      stats =
        {
          data_sent = 0;
          retransmissions = 0;
          acks_sent = 0;
          delivered = 0;
          duplicates = 0;
          abandoned = 0;
        };
      senders = Hashtbl.create 8;
      receivers = Hashtbl.create 8;
      egress_hook = None;
      ingress_hook = None;
    }
  in
  t.egress_hook <-
    Some
      (Vw_stack.Host.add_hook host Vw_stack.Hook.Egress
         ~priority:Vw_stack.Hook.priority_rll ~name:"rll" (egress_handler t));
  t.ingress_hook <-
    Some
      (Vw_stack.Host.add_hook host Vw_stack.Hook.Ingress
         ~priority:Vw_stack.Hook.priority_rll ~name:"rll" (ingress_handler t));
  t

let uninstall t =
  (match t.egress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.host id
  | None -> ());
  (match t.ingress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.host id
  | None -> ());
  t.egress_hook <- None;
  t.ingress_hook <- None
