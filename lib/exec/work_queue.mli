(** The shared index queue worker domains draw jobs from, a chunk at a
    time.

    Jobs in a campaign are coarse (a whole compiled-and-simulated scenario
    each), so self-scheduling over one atomic counter gets the load
    balance work stealing would — an idle worker immediately claims the
    next undispatched span — without per-worker deques. Chunking batches
    [chunk] consecutive indices per claim so a worker amortizes the
    (contended) atomic increment and its cache traffic over many jobs;
    [chunk = 1] recovers the fully dynamic schedule. Spans are handed out
    in ascending order, which the executor's early-exit logic relies on:
    when the bound is lowered to [i], every span starting [<= i] has
    already been dispatched and its holder will run every index up to the
    bound. *)

type t

val create : ?chunk:int -> length:int -> unit -> t
(** A queue over indices [0 .. length-1], initially unbounded, handing out
    spans of [chunk] (default 1) indices.
    @raise Invalid_argument when [length < 0] or [chunk < 1]. *)

val take : t -> (int * int) option
(** Claim the next span [Some (lo, hi)] covering indices [lo .. hi-1]
    ([hi - lo <= chunk]; the last span may be short). [None] once the
    queue is exhausted or the next span starts beyond the current bound —
    the calling worker should stop, as later takes only return higher
    spans. A span may straddle the bound: the holder must check {!bound}
    before each index and skip those above it. *)

val cap : t -> int -> unit
(** [cap t i] lowers the bound to [min bound i]: spans starting above the
    bound are no longer handed out, and holders of already-claimed spans
    skip the indices above it. Called when a job's outcome satisfies the
    executor's stop predicate; indices [<= bound] are always still
    executed, which is what the deterministic reducer needs. Monotone and
    race-safe. *)

val bound : t -> int
(** Current bound ([max_int] when never capped). *)

val chunk : t -> int
val length : t -> int
