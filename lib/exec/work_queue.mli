(** The shared index queue worker domains draw jobs from.

    Jobs in a campaign are coarse (a whole compiled-and-simulated scenario
    each), so self-scheduling over one atomic counter gets the load balance
    work stealing would — an idle worker immediately claims the next
    undispatched index — without per-worker deques. Indices are handed out
    in ascending order, which the executor's early-exit logic relies on:
    when the bound is lowered to [i], every index [<= i] has already been
    dispatched and will complete. *)

type t

val create : length:int -> t
(** A queue over indices [0 .. length-1], initially unbounded. *)

val take : t -> int option
(** Claim the next index; [None] once the queue is exhausted or the next
    index lies beyond the current bound (the calling worker should stop —
    later takes only return higher indices). *)

val cap : t -> int -> unit
(** [cap t i] lowers the bound to [min bound i]: indices greater than the
    bound are no longer handed out. Called when a job's outcome satisfies
    the executor's stop predicate, so work provably beyond the reduced
    prefix is never started. Monotone and race-safe. *)

val bound : t -> int
(** Current bound ([max_int] when never capped). *)

val length : t -> int
