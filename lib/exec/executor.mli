(** Run a plan, sequentially or across OCaml 5 domains — same output.

    The executor's contract is {e byte-determinism}: for a plan of
    deterministic jobs, [run ~jobs:1] and [run ~jobs:n] return the same
    outcome list, because outcomes are merged by {!reduce} in plan order
    (never completion order) and the early-exit predicate cuts at the
    {e earliest} plan index that satisfies it, regardless of which worker
    found it first.

    Preconditions on jobs (see {!Job}): each owns all the mutable state it
    touches (testbed, engine, PRNGs, recorders, metrics) and never prints.
    The executor forces the process-wide {!Vw_util.Prng.run_seed} memo
    before handing work to pool domains so no worker races on its
    initialization. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val effective_jobs : jobs:int -> int
(** [max 1 (min jobs (default_jobs ()))] — the parallelism {!run} actually
    uses on the implicit-pool path. Requesting more domains than the
    machine has cores turns parallelism into pure overhead for CPU-bound
    jobs (every minor collection is a stop-the-world barrier across all
    domains, and an unscheduled domain delays everyone's safepoint), so
    the default path refuses to oversubscribe. Exposed so benches can
    record the parallelism a level really ran with. *)

val auto_chunk : jobs:int -> int -> int
(** [auto_chunk ~jobs n] — the chunk size used when none is given: about
    four spans per worker, clamped to [1 .. 32]. Exposed so benches and
    reports can record the effective chunk. *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?pool:Pool.t ->
  ?stop_after:('a Outcome.t -> bool) ->
  ?on_outcome:('a Outcome.t -> unit) ->
  'a Plan.t ->
  'a Outcome.t list
(** [run ~jobs plan] executes every job and returns outcomes in plan
    order. [jobs] is first capped: to {!effective_jobs} on the
    implicit-pool path (no oversubscription — see above), and always to
    [Plan.length plan]; an explicit [pool] honors the full request, for
    callers that must exercise the parallel path whatever the host
    (tests, the bench's scaling sweep). [jobs <= 1] after capping runs in
    the calling domain; otherwise the calling domain plus [jobs - 1]
    persistent {!Pool} domains (the shared {!Pool.global} unless [pool]
    is given — never fresh spawns per plan) self-schedule spans of
    [chunk] consecutive jobs off a shared {!Work_queue}. [chunk] defaults to {!auto_chunk}
    and is a pure scheduling knob: outcomes are byte-identical at every
    [jobs] and [chunk] combination. A job that raises yields a [Crash]
    outcome for that job alone; the rest of its chunk and plan still run.

    With [stop_after], the result is truncated (inclusively) at the first
    plan index whose outcome satisfies the predicate. Sequentially, later
    jobs are never started; in parallel, workers stop claiming spans
    beyond the earliest satisfying index (and skip the tail of a claimed
    span past it) and any already-running straggler results are discarded
    by the reducer — either way the returned list is identical.

    [on_outcome] is invoked on the calling domain for each {e returned}
    outcome, in plan order, after reduction — once per outcome, never for
    stragglers the reducer dropped. Side effects made from it (appending
    to a failure journal, progress accounting) are therefore identical at
    every [jobs]/[chunk] combination. *)

val reduce :
  ?stop_after:('a Outcome.t -> bool) ->
  plan_length:int ->
  'a Outcome.t list ->
  'a Outcome.t list
(** The deterministic reducer, exposed for testing: accepts outcomes in
    {e any} completion order and returns the plan-order prefix up to (and
    including) the first index satisfying [stop_after] (the whole plan when
    absent or never satisfied). @raise Invalid_argument if an index inside
    the returned prefix is missing or duplicated. *)
