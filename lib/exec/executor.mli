(** Run a plan, sequentially or across OCaml 5 domains — same output.

    The executor's contract is {e byte-determinism}: for a plan of
    deterministic jobs, [run ~jobs:1] and [run ~jobs:n] return the same
    outcome list, because outcomes are merged by {!reduce} in plan order
    (never completion order) and the early-exit predicate cuts at the
    {e earliest} plan index that satisfies it, regardless of which worker
    found it first.

    Preconditions on jobs (see {!Job}): each owns all the mutable state it
    touches (testbed, engine, PRNGs, recorders, metrics) and never prints.
    The executor forces the process-wide {!Vw_util.Prng.run_seed} memo
    before spawning domains so no worker races on its initialization. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)

val run :
  ?jobs:int ->
  ?stop_after:('a Outcome.t -> bool) ->
  'a Plan.t ->
  'a Outcome.t list
(** [run ~jobs plan] executes every job and returns outcomes in plan
    order. [jobs <= 1] runs in the calling domain; otherwise
    [min jobs (Plan.length plan)] worker domains self-schedule off a shared
    {!Work_queue}. A job that raises yields a [Crash] outcome; the rest of
    the plan still runs.

    With [stop_after], the result is truncated (inclusively) at the first
    plan index whose outcome satisfies the predicate. Sequentially, later
    jobs are never started; in parallel, workers stop claiming indices
    beyond the earliest satisfying index and any already-running straggler
    results are discarded by the reducer — either way the returned list is
    identical. *)

val reduce :
  ?stop_after:('a Outcome.t -> bool) ->
  plan_length:int ->
  'a Outcome.t list ->
  'a Outcome.t list
(** The deterministic reducer, exposed for testing: accepts outcomes in
    {e any} completion order and returns the plan-order prefix up to (and
    including) the first index satisfying [stop_after] (the whole plan when
    absent or never satisfied). @raise Invalid_argument if an index inside
    the returned prefix is missing or duplicated. *)
