(** What a finished job reports back to the reducer.

    An outcome is the only thing that crosses back from a worker domain to
    the main domain: the job's index in its plan, a verdict, the typed
    payload the job computed (scenario result, fuzz-case analysis, bench
    trial, …), a deterministic log fragment, and named artifacts. Everything
    a campaign surface prints or writes is derived from outcomes folded in
    {e plan order} — never completion order — which is what makes
    [--jobs 1] and [--jobs N] output byte-identical. *)

type verdict =
  | Pass
  | Fail
  | Crash of string
      (** the job raised; the payload is [None] and the string is the
          exception ([Printexc.to_string]) *)

type 'a t = {
  index : int;  (** position in the plan that produced this outcome *)
  label : string;
  verdict : verdict;
  payload : 'a option;  (** [None] only when the job crashed *)
  log : string;
      (** deterministic text the reducer may print, in plan order *)
  artifacts : (string * string) list;
      (** relative file name [->] contents, for campaign output directories *)
}

val passed : _ t -> bool
(** [true] iff the verdict is [Pass]. *)

val crashed : _ t -> bool

val verdict_name : verdict -> string
(** ["pass"], ["fail"] or ["crash"]. *)
