type verdict = Pass | Fail | Crash of string

type 'a t = {
  index : int;
  label : string;
  verdict : verdict;
  payload : 'a option;
  log : string;
  artifacts : (string * string) list;
}

let passed o = match o.verdict with Pass -> true | Fail | Crash _ -> false
let crashed o = match o.verdict with Crash _ -> true | Pass | Fail -> false

let verdict_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Crash _ -> "crash"
