type t = { length : int; next : int Atomic.t; limit : int Atomic.t }

let create ~length =
  if length < 0 then invalid_arg "Work_queue.create: negative length";
  { length; next = Atomic.make 0; limit = Atomic.make max_int }

let take t =
  let i = Atomic.fetch_and_add t.next 1 in
  if i >= t.length || i > Atomic.get t.limit then None else Some i

let rec cap t i =
  let b = Atomic.get t.limit in
  if i < b && not (Atomic.compare_and_set t.limit b i) then cap t i

let bound t = Atomic.get t.limit
let length t = t.length
