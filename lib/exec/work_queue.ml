type t = {
  length : int;
  chunk : int;
  next : int Atomic.t;
  limit : int Atomic.t;
}

let create ?(chunk = 1) ~length () =
  if length < 0 then invalid_arg "Work_queue.create: negative length";
  if chunk < 1 then invalid_arg "Work_queue.create: chunk < 1";
  { length; chunk; next = Atomic.make 0; limit = Atomic.make max_int }

let take t =
  let lo = Atomic.fetch_and_add t.next t.chunk in
  if lo >= t.length || lo > Atomic.get t.limit then None
  else Some (lo, min t.length (lo + t.chunk))

let rec cap t i =
  let b = Atomic.get t.limit in
  if i < b && not (Atomic.compare_and_set t.limit b i) then cap t i

let bound t = Atomic.get t.limit
let chunk t = t.chunk
let length t = t.length
