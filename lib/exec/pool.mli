(** A persistent pool of worker domains, created once and reused across
    plans.

    [Domain.spawn]/[Domain.join] are expensive relative to a campaign
    trial: each spawn is a stop-the-world synchronization of every running
    domain, and a campaign that spawns a fresh crew per plan pays it over
    and over (BENCH_PR5 measured parallel campaigns {e losing} to
    sequential for exactly this reason). A pool spawns each worker at most
    once per process and parks it on a condition variable between plans, so
    [Executor.run]'s per-plan cost drops to one lock/broadcast.

    Concurrency contract: a pool executes one {!run} at a time per pool —
    [run] is itself serialized with a dedicated mutex, so concurrent
    callers queue rather than interleave. Memory publication is by the pool
    lock: everything the caller wrote before [run] is visible to workers,
    and everything workers wrote is visible to the caller when [run]
    returns (the same guarantee [Domain.join] used to provide). *)

type t

val create : unit -> t
(** An empty pool. Workers are spawned lazily by {!run}, up to the largest
    [workers] ever requested, and stay alive until {!shutdown}. *)

val global : unit -> t
(** The process-wide pool shared by every {!Executor.run} call that is not
    given an explicit pool. Created on first use; its workers are joined by
    an [at_exit] hook so process shutdown stays clean. *)

val run : t -> workers:int -> (unit -> unit) -> unit
(** [run t ~workers f] executes [f ()] concurrently on [workers] pool
    domains {e and} on the calling domain, returning when every invocation
    has finished — the calling domain is always a participant, so total
    parallelism is [workers + 1]. Missing workers are spawned (and kept).
    [workers <= 0] degenerates to [f ()] on the calling domain alone.

    [f] runs more than once and concurrently with itself; it must
    self-schedule its work (the executor's {!Work_queue}). An exception
    from any invocation is caught, the remaining invocations still finish,
    and the first exception observed is re-raised in the caller. *)

type stats = {
  size : int;  (** live worker domains *)
  spawned : int;  (** domains ever spawned — equals [size] unless shut down *)
  runs : int;  (** [run] calls served *)
}

val stats : t -> stats
(** Spawn accounting, used by tests to prove plans reuse workers instead of
    leaking domains. *)

val shutdown : t -> unit
(** Stop and join every worker. Idempotent; the pool can be used again
    afterwards (workers respawn on demand). *)
