type 'a result = {
  verdict : [ `Pass | `Fail ];
  payload : 'a;
  log : string;
  artifacts : (string * string) list;
}

let result ?(log = "") ?(artifacts = []) ~verdict payload =
  { verdict; payload; log; artifacts }

type 'a t = { label : string; body : unit -> 'a result }

let v ?(label = "job") body = { label; body }
let label t = t.label
let run t = t.body ()
