(** An ordered list of jobs.

    The order is the plan's contract: reducers fold outcomes by plan index,
    so two executions of the same plan — at any [--jobs] level — yield the
    same reduced output. *)

type 'a t

val of_list : 'a Job.t list -> 'a t
val init : int -> (int -> 'a Job.t) -> 'a t
val length : _ t -> int

val job : 'a t -> int -> 'a Job.t
(** @raise Invalid_argument when the index is out of bounds. *)

val labels : _ t -> string list
