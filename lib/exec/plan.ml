type 'a t = 'a Job.t array

let of_list jobs = Array.of_list jobs
let init n f = Array.init n f
let length = Array.length
let job t i = t.(i)
let labels t = Array.to_list (Array.map Job.label t)
