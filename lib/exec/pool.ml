type t = {
  lock : Mutex.t;
  run_lock : Mutex.t;  (* serializes whole [run] calls *)
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable generation : int;
  mutable work : (unit -> unit) option;
  mutable participants : int;  (* pool workers wanted for this generation *)
  mutable started : int;
  mutable unfinished : int;  (* started and not yet finished *)
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable spawned : int;
  mutable runs : int;
}

type stats = { size : int; spawned : int; runs : int }

let create () =
  {
    lock = Mutex.create ();
    run_lock = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    generation = 0;
    work = None;
    participants = 0;
    started = 0;
    unfinished = 0;
    failure = None;
    stop = false;
    domains = [];
    spawned = 0;
    runs = 0;
  }

(* One parked worker. It joins a generation at most once (tracked by
   [last_gen]) and only while fewer than [participants] workers have
   started it, then parks again. *)
let worker_loop t ~initial_gen =
  let rec loop last_gen =
    Mutex.lock t.lock;
    while
      (not t.stop)
      && (t.generation = last_gen || t.started >= t.participants)
    do
      Condition.wait t.work_ready t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      let gen = t.generation in
      let work = Option.get t.work in
      t.started <- t.started + 1;
      t.unfinished <- t.unfinished + 1;
      Mutex.unlock t.lock;
      let failed = match work () with () -> None | exception e -> Some e in
      Mutex.lock t.lock;
      (match (failed, t.failure) with
      | Some e, None -> t.failure <- Some e
      | _ -> ());
      t.unfinished <- t.unfinished - 1;
      if t.started >= t.participants && t.unfinished = 0 then
        Condition.broadcast t.work_done;
      Mutex.unlock t.lock;
      loop gen
    end
  in
  loop initial_gen

(* under [t.lock] *)
let spawn_locked t =
  let initial_gen = t.generation in
  let d = Domain.spawn (fun () -> worker_loop t ~initial_gen) in
  t.domains <- d :: t.domains;
  t.spawned <- t.spawned + 1

let run t ~workers f =
  if workers <= 0 then f ()
  else begin
    Mutex.lock t.run_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.run_lock)
      (fun () ->
        Mutex.lock t.lock;
        while List.length t.domains < workers do
          spawn_locked t
        done;
        t.generation <- t.generation + 1;
        t.work <- Some f;
        t.participants <- workers;
        t.started <- 0;
        t.unfinished <- 0;
        t.failure <- None;
        t.runs <- t.runs + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.lock;
        (* the calling domain is participant [workers + 1] *)
        let own_failure =
          match f () with () -> None | exception e -> Some e
        in
        Mutex.lock t.lock;
        while not (t.started >= t.participants && t.unfinished = 0) do
          Condition.wait t.work_done t.lock
        done;
        t.work <- None;
        let pool_failure = t.failure in
        t.failure <- None;
        Mutex.unlock t.lock;
        match (own_failure, pool_failure) with
        | Some e, _ | None, Some e -> raise e
        | None, None -> ())
  end

let stats t =
  Mutex.lock t.lock;
  let s = { size = List.length t.domains; spawned = t.spawned; runs = t.runs } in
  Mutex.unlock t.lock;
  s

let shutdown t =
  Mutex.lock t.run_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.run_lock)
    (fun () ->
      Mutex.lock t.lock;
      t.stop <- true;
      Condition.broadcast t.work_ready;
      let ds = t.domains in
      t.domains <- [];
      Mutex.unlock t.lock;
      List.iter Domain.join ds;
      Mutex.lock t.lock;
      (* reusable: workers respawn on the next [run] *)
      t.stop <- false;
      Mutex.unlock t.lock)

let global =
  let p = lazy (let p = create () in at_exit (fun () -> shutdown p); p) in
  fun () -> Lazy.force p
