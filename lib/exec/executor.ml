let default_jobs () = Domain.recommended_domain_count ()

let run_job plan i : _ Outcome.t =
  let job = Plan.job plan i in
  let label = Job.label job in
  match Job.run job with
  | r ->
      {
        Outcome.index = i;
        label;
        verdict =
          (match r.Job.verdict with `Pass -> Outcome.Pass | `Fail -> Fail);
        payload = Some r.Job.payload;
        log = r.Job.log;
        artifacts = r.Job.artifacts;
      }
  | exception e ->
      {
        Outcome.index = i;
        label;
        verdict = Crash (Printexc.to_string e);
        payload = None;
        log = "";
        artifacts = [];
      }

let reduce ?stop_after ~plan_length outcomes =
  let slots = Array.make plan_length None in
  List.iter
    (fun (o : _ Outcome.t) ->
      if o.index < 0 || o.index >= plan_length then
        invalid_arg
          (Printf.sprintf "Executor.reduce: index %d outside plan of %d"
             o.index plan_length);
      if slots.(o.index) <> None then
        invalid_arg
          (Printf.sprintf "Executor.reduce: duplicate outcome for index %d"
             o.index);
      slots.(o.index) <- Some o)
    outcomes;
  (* the cut is the first plan index satisfying the predicate — stragglers
     past it may exist in [outcomes] but are dropped *)
  let cut =
    match stop_after with
    | None -> plan_length - 1
    | Some p ->
        let rec find i =
          if i >= plan_length then plan_length - 1
          else
            match slots.(i) with
            | Some o when p o -> i
            | _ -> find (i + 1)
        in
        find 0
  in
  List.init (cut + 1) (fun i ->
      match slots.(i) with
      | Some o -> o
      | None ->
          invalid_arg
            (Printf.sprintf "Executor.reduce: missing outcome for index %d"
               i))

let run_sequential ?stop_after plan =
  let n = Plan.length plan in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let o = run_job plan i in
      let stop = match stop_after with Some p -> p o | None -> false in
      if stop then List.rev (o :: acc) else go (i + 1) (o :: acc)
  in
  go 0 []

(* Aim for a few chunks per worker: enough slack that an unlucky worker
   stuck with slow jobs sheds load to the others, large enough that a
   256-trial campaign claims spans of dozens of jobs instead of hammering
   the shared counter per scenario. *)
let auto_chunk ~jobs n = max 1 (min 32 (n / (jobs * 4)))

let run_parallel ~pool ~jobs ~chunk ?stop_after plan =
  let n = Plan.length plan in
  (* force the process-wide seed memo on the main domain: workers must only
     ever read it (see Vw_util.Prng.run_seed) *)
  ignore (Vw_util.Prng.run_seed ());
  let chunk =
    match chunk with Some c -> max 1 c | None -> auto_chunk ~jobs n
  in
  let queue = Work_queue.create ~chunk ~length:n () in
  let slots = Array.make n None in
  let worker () =
    let rec loop () =
      match Work_queue.take queue with
      | None -> ()
      | Some (lo, hi) ->
          let rec step i =
            (* a claimed span may straddle a lowered bound: never start an
               index above it (indices at or below always run, which the
               reducer's cut relies on) *)
            if i < hi && i <= Work_queue.bound queue then begin
              let o = run_job plan i in
              slots.(i) <- Some o;
              (match stop_after with
              | Some p when p o -> Work_queue.cap queue i
              | _ -> ());
              step (i + 1)
            end
          in
          step lo;
          loop ()
    in
    loop ()
  in
  (* the calling domain is the extra worker, so [jobs - 1] from the pool *)
  Pool.run pool ~workers:(jobs - 1) worker;
  let outcomes =
    Array.to_list slots |> List.filter_map (fun o -> o)
  in
  reduce ?stop_after ~plan_length:n outcomes

let effective_jobs ~jobs = max 1 (min jobs (default_jobs ()))

let run ?(jobs = 1) ?chunk ?pool ?stop_after ?on_outcome plan =
  let n = Plan.length plan in
  let outcomes =
    if n = 0 then []
    else
    (* On the implicit-pool path, never run more domains than the machine
       has cores: for CPU-bound deterministic jobs, oversubscription only
       multiplies minor-GC barriers (every minor collection synchronizes
       all domains, and a parked domain must be scheduled to reach its
       safepoint). Passing an explicit [pool] opts out — benchmarks and
       tests that need to exercise the parallel path regardless of the
       host's core count. *)
      let jobs =
        match pool with
        | Some _ -> max 1 (min jobs n)
        | None -> min (effective_jobs ~jobs) n
      in
      if jobs = 1 then run_sequential ?stop_after plan
      else
        let pool = match pool with Some p -> p | None -> Pool.global () in
        run_parallel ~pool ~jobs ~chunk ?stop_after plan
  in
  (* the hook sees the final reduced list in plan order, on the calling
     domain — exactly once per returned outcome, never for discarded
     stragglers, so side effects (the failure journal) stay byte-identical
     at every [jobs] level *)
  (match on_outcome with
  | Some f -> List.iter f outcomes
  | None -> ());
  outcomes
