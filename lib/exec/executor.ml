let default_jobs () = Domain.recommended_domain_count ()

let run_job plan i : _ Outcome.t =
  let job = Plan.job plan i in
  let label = Job.label job in
  match Job.run job with
  | r ->
      {
        Outcome.index = i;
        label;
        verdict =
          (match r.Job.verdict with `Pass -> Outcome.Pass | `Fail -> Fail);
        payload = Some r.Job.payload;
        log = r.Job.log;
        artifacts = r.Job.artifacts;
      }
  | exception e ->
      {
        Outcome.index = i;
        label;
        verdict = Crash (Printexc.to_string e);
        payload = None;
        log = "";
        artifacts = [];
      }

let reduce ?stop_after ~plan_length outcomes =
  let slots = Array.make plan_length None in
  List.iter
    (fun (o : _ Outcome.t) ->
      if o.index < 0 || o.index >= plan_length then
        invalid_arg
          (Printf.sprintf "Executor.reduce: index %d outside plan of %d"
             o.index plan_length);
      if slots.(o.index) <> None then
        invalid_arg
          (Printf.sprintf "Executor.reduce: duplicate outcome for index %d"
             o.index);
      slots.(o.index) <- Some o)
    outcomes;
  (* the cut is the first plan index satisfying the predicate — stragglers
     past it may exist in [outcomes] but are dropped *)
  let cut =
    match stop_after with
    | None -> plan_length - 1
    | Some p ->
        let rec find i =
          if i >= plan_length then plan_length - 1
          else
            match slots.(i) with
            | Some o when p o -> i
            | _ -> find (i + 1)
        in
        find 0
  in
  List.init (cut + 1) (fun i ->
      match slots.(i) with
      | Some o -> o
      | None ->
          invalid_arg
            (Printf.sprintf "Executor.reduce: missing outcome for index %d"
               i))

let run_sequential ?stop_after plan =
  let n = Plan.length plan in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let o = run_job plan i in
      let stop = match stop_after with Some p -> p o | None -> false in
      if stop then List.rev (o :: acc) else go (i + 1) (o :: acc)
  in
  go 0 []

let run_parallel ~jobs ?stop_after plan =
  let n = Plan.length plan in
  (* force the process-wide seed memo on the main domain: workers must only
     ever read it (see Vw_util.Prng.run_seed) *)
  ignore (Vw_util.Prng.run_seed ());
  let queue = Work_queue.create ~length:n in
  let slots = Array.make n None in
  let worker () =
    let rec loop () =
      match Work_queue.take queue with
      | None -> ()
      | Some i ->
          let o = run_job plan i in
          slots.(i) <- Some o;
          (match stop_after with
          | Some p when p o -> Work_queue.cap queue i
          | _ -> ());
          loop ()
    in
    loop ()
  in
  let domains = List.init jobs (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let outcomes =
    Array.to_list slots |> List.filter_map (fun o -> o)
  in
  reduce ?stop_after ~plan_length:n outcomes

let run ?(jobs = 1) ?stop_after plan =
  let n = Plan.length plan in
  if n = 0 then []
  else
    let jobs = max 1 (min jobs n) in
    if jobs = 1 then run_sequential ?stop_after plan
    else run_parallel ~jobs ?stop_after plan
