(** A job: one self-contained deterministic unit of campaign work.

    A job owns its whole world — it builds its own testbed (hence its own
    simulation engine, PRNG streams, metrics registry and flight-recorder
    rings) from plain immutable inputs, runs, and returns a {!result}. The
    state-ownership rule that makes plans parallelizable: a job must not
    read or write any mutable state reachable from another job, and must
    not print; anything it wants shown goes in the result's [log] and is
    emitted by the reducer in plan order. *)

type 'a result = {
  verdict : [ `Pass | `Fail ];
  payload : 'a;
  log : string;
  artifacts : (string * string) list;
}

val result :
  ?log:string ->
  ?artifacts:(string * string) list ->
  verdict:[ `Pass | `Fail ] ->
  'a ->
  'a result
(** Defaults: empty log, no artifacts. *)

type 'a t

val v : ?label:string -> (unit -> 'a result) -> 'a t
(** [v ~label f] — [f] runs on an arbitrary domain, exactly once. A raised
    exception is caught by the executor and becomes a [Crash] outcome for
    this job alone. *)

val label : _ t -> string

val run : 'a t -> 'a result
(** Execute the job's body (used by the executor; may raise). *)
