(* Shared FSL script texts used across test suites: the paper's Figure 5 and
   Figure 6 scenarios (with the CanTx window arithmetic corrected as
   documented in DESIGN.md §5 and EXPERIMENTS.md) plus small synthetic
   scenarios. *)

let figure2_node_table =
  {|
NODE_TABLE
node1 00:46:61:af:fe:23 192.168.1.1
node2 00:23:31:df:af:12 192.168.1.2
END
|}

(* The Figure 5 script: TCP slow-start → congestion-avoidance transition. *)
let tcp_ss_ca =
  {|
VAR SeqNoData, SeqNoAck;
FILTER_TABLE
TCP_data_rt1: (34 2 0x6000), (36 2 0x4000), (38 4 SeqNoData), (47 1 0x10 0x10)
TCP_ack_rt1: (34 2 0x4000), (36 2 0x6000), (42 4 SeqNoAck), (47 1 0x10 0x10)
TCP_syn: (34 2 0x6000), (36 2 0x4000), (47 1 0x02 0x02)
TCP_synack: (34 2 0x4000), (36 2 0x6000), (47 1 0x12 0x12)
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
TCP_ack: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:46:61:af:fe:23 192.168.1.1
node2 00:23:31:df:af:12 192.168.1.2
END
SCENARIO TCP_SS_CA_algo
SYNACK: (TCP_synack, node2, node1, RECV)
SA_ACK: (TCP_data, node1, node2, SEND)
DATA: (TCP_data, node1, node2, SEND)
ACK: (TCP_ack, node2, node1, RECV)
CWND: (node1)
CanTx: (node1)
CCNT: (node1)
SSTHRESH: (node1)
(TRUE) >> ENABLE_CNTR( SYNACK );
     ENABLE_CNTR( SA_ACK );
     ENABLE_CNTR( ACK );
     ASSIGN_CNTR( CWND, 1 );
     ASSIGN_CNTR( CanTx, 1 );
     ENABLE_CNTR( CCNT );
     ASSIGN_CNTR( SSTHRESH, 2 );
/* Fault Injection: Drop SynAck at Receiver node */
((SYNACK > 0) && (SYNACK < 2)) >>
     DROP TCP_synack, node2, node1, RECV;
/*** ANALYSIS SCRIPT ***/
/* ACK in response to SYNACK matches tcp_data */
((SA_ACK = 1)) >> ENABLE_CNTR( DATA );
     DISABLE_CNTR( SA_ACK );
((DATA = 1)) >> RESET_CNTR( DATA );
     DECR_CNTR( CanTx , 1 );
/* slow-start: each ack slides the window and grows cwnd */
((CWND <= SSTHRESH) && (ACK = 1)) >>
     RESET_CNTR( ACK );
     INCR_CNTR( CWND, 1 );
     INCR_CNTR( CanTx, 2 );
/* congestion avoidance */
((CWND > SSTHRESH) && (ACK = 1)) >>
     RESET_CNTR( ACK );
     INCR_CNTR( CanTx, 1 );
     INCR_CNTR( CCNT, 1 );
((CWND > SSTHRESH) && (CCNT > CWND)) >>
     RESET_CNTR( CCNT );
     INCR_CNTR( CWND, 1 );
     INCR_CNTR( CanTx, 1 );
/* Number of data packets that can be sent out is never negative */
((CanTx < 0)) >> FLAG_ERROR;
END
|}

(* The Figure 6 script: Rether single-node-failure recovery. *)
let rether_failure =
  {|
FILTER_TABLE
tr_token: (12 2 0x9900), (14 2 0x0001)
tr_token_ack: (12 2 0x9900), (14 2 0010)
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 02:00:00:00:00:01 10.0.0.1
node2 02:00:00:00:00:02 10.0.0.2
node3 02:00:00:00:00:03 10.0.0.3
node4 02:00:00:00:00:04 10.0.0.4
END
SCENARIO Test_Single_Node_Failure 1sec
CNT_DATA: (TCP_data, node1, node4, RECV)
TokensTo2: (tr_token, node1, node2, RECV)
TokensFrom2: (tr_token, node2, node3, SEND)
TokensTo4: (tr_token, node2, node4, RECV)
TokensTo1: (tr_token, node4, node1, RECV)
(TRUE) >> ENABLE_CNTR( CNT_DATA );
((CNT_DATA > 1000)) >> ENABLE_CNTR( TokensTo2 );
((TokensTo2 = 1)) >> FAIL( node3 );
     ENABLE_CNTR( TokensFrom2 );
     RESET_CNTR( TokensTo2 );
((TokensFrom2 = 3)) >> ENABLE_CNTR( TokensTo4 );
((TokensTo4 = 1)) >> ENABLE_CNTR( TokensTo1 );
/*** ANALYSIS SCRIPT ***/
((TokensFrom2 > 3)) >> FLAG_ERROR;
((TokensTo2 = 1) && (TokensTo4 = 1) && (TokensTo1 = 1)) >> STOP;
END
|}

(* A small UDP drop/dup scenario used by unit and quickstart tests. *)
let udp_drop_dup =
  {|
FILTER_TABLE
udp_ping: (34 2 0x1388), (36 2 0x1389)
udp_pong: (34 2 0x1389), (36 2 0x1388)
END
NODE_TABLE
alice 02:00:00:00:00:0a 10.0.0.10
bob 02:00:00:00:00:0b 10.0.0.11
END
SCENARIO udp_drop_dup
PING: (udp_ping, alice, bob, RECV)
PONG: (udp_pong, bob, alice, SEND)
(TRUE) >> ENABLE_CNTR( PING ); ENABLE_CNTR( PONG );
((PING > 2) && (PING <= 4)) >> DROP( udp_ping, alice, bob, RECV );
((PONG = 6)) >> DUP( udp_pong, bob, alice, SEND );
END
|}
