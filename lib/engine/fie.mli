(** The Fault Injection and Analysis Engine (FIE/FAE) of Sections 3.3 & 5.2.

    One engine installs per testbed host, as a pair of hooks at priority
    {!Vw_stack.Hook.priority_virtualwire} — between the IP stack and the RLL
    / NIC, the position the paper implements with Netfilter. The engine is
    idle until it receives the INIT control message (the six tables) and
    START.

    Per-packet flow (Figure 4b): classify against the filter table
    (first match wins) → update the event counters this node observes →
    re-evaluate affected terms → re-evaluate affected conditions →
    execute triggered actions. Counter-value and term-status changes
    propagate to remote nodes over the control plane.

    The classification step dispatches through the precompiled
    {!Vw_fsl.Tables.classification_index} and matches the frame in place
    (no serialization); observers and armed faults are precomputed per
    (hook point, filter id) at INIT, so a packet only touches the
    candidates that could apply to it. See DESIGN.md, "Per-packet fast
    path".

    Rule semantics (DESIGN.md §5): condition evaluation is {e snapshot,
    edge-triggered} — within a cascade round all affected conditions are
    evaluated against the same state, then every condition that rose
    false→true fires, then the resulting counter changes seed the next
    round (bounded; overflow is reported as a scenario error). Fault
    actions are {e level-armed}: a DROP/DELAY/REORDER/DUP/MODIFY applies to
    every matching packet while its condition holds — including the packet
    whose arrival made it true.

    The FAE is not separate code: FLAG_ERROR and STOP are ordinary actions
    whose reports travel to the control node. *)

type report =
  | Stop_report of { nid : int }
  | Error_report of { nid : int; rule : int }

type stats = {
  mutable packets_inspected : int;  (** frames seen by the hooks *)
  mutable packets_matched : int;  (** frames that matched a filter *)
  mutable filters_scanned : int;
      (** filter candidates actually tested by the indexed classifier —
          the denominator of the per-packet scan cost *)
  mutable index_hits : int;
      (** packets whose discriminating field selected a bucket *)
  mutable index_misses : int;  (** packets that scanned the fallback only *)
  mutable counter_updates : int;
  mutable terms_evaluated : int;
  mutable conditions_evaluated : int;
  mutable actions_executed : int;
  mutable control_sent : int;
  mutable control_received : int;
  mutable faults_drop : int;
  mutable faults_delay : int;
  mutable faults_reorder : int;  (** packets buffered for reordering *)
  mutable faults_dup : int;
  mutable faults_modify : int;
  mutable cascade_overflows : int;
}

type t

val install : Vw_stack.Host.t -> t
(** Add the engine hooks. The engine stays transparent (accepts everything)
    until initialized. *)

val uninstall : t -> unit

val host : t -> Vw_stack.Host.t

val init_local :
  t -> controller_nid:int -> Vw_fsl.Tables.t -> (unit, string) result
(** Initialize directly (the control node does this for its own engine; the
    others get the INIT control frame). Fails if this host's MAC is not in
    the node table — such a host simply does not participate (§3.1). *)

val start_local : t -> unit
(** Fire the scenario's initially-true rules (the control node's local
    equivalent of the START frame). *)

val reset : t -> unit
(** Forget tables and run-time state; the engine goes transparent again.
    Lets one testbed run many scenarios (regression testing). *)

val initialized : t -> bool
val started : t -> bool
val my_nid : t -> int option
val stats : t -> stats

val stats_fields : stats -> (string * int) list
(** Every stats field as a [(name, value)] pair, declaration order — the
    single source for [--stats], the metrics registry export, and tests
    that assert nothing was forgotten. *)

(** {1 Observability}

    The engine itself allocates no recorder: it starts with
    {!Vw_obs.Recorder.null} and {!Vw_obs.Metrics.null}-equivalent handles,
    so an uninstrumented run pays one boolean test per would-be event.
    [Vw_core.Testbed.enable_observability] wires real sinks in. *)

val recorder : t -> Vw_obs.Recorder.t

val set_observability :
  t -> recorder:Vw_obs.Recorder.t -> metrics:Vw_obs.Metrics.t -> unit
(** Install the flight-recorder sink and register this engine's histograms
    (cascade depth, filters scanned per packet, DELAY/REORDER queue
    occupancy, control fan-out per cascade) in [metrics]. Call before or
    after INIT; the recorder learns the node id at INIT either way. *)

val counter_value : t -> string -> int option
(** This node's view of a counter's value (authoritative for owned
    counters, last-received for remote ones). *)

val counter_enabled : t -> string -> bool option

val counters : t -> (string * int * bool) list
(** Every counter's (name, this node's view of its value, enabled flag) —
    the post-run dump a tester reads first. Empty before INIT. *)

val condition_status : t -> int -> bool option

val term_status : t -> int -> bool option
(** This node's view of term [tid]'s status (owner-evaluated locally,
    last-received for subscribers). [None] before INIT or out of range.
    Used by the convergence oracle in [vw_check]. *)

val last_match_time : t -> Vw_sim.Simtime.t option
(** When a packet last matched a filter here — scenario inactivity is
    judged on this. *)

val set_report_handler : t -> (report -> unit) -> unit
(** Install on the control node's engine: receives local and remote
    STOP/FLAG_ERROR reports. *)

val send_control : t -> dst_nid:int -> Control.msg -> unit
(** Exposed for the controller (which shares the engine's node table) and
    for tests. Local destinations are processed synchronously. *)

(** {1 Batched hot path}

    {!process_one} is exactly the hook handler the engine installed for
    that point — the linear reference. {!process_batch} runs a filled
    {!Arena.t} through the same per-frame pipeline while amortizing the
    batch-invariant work: one recorder slot reservation, one
    classification pass over the whole batch (when no variable bindings
    or control frames can perturb it mid-batch), one stop-flag read per
    frame instead of a scheduler round-trip. Semantics are identical to
    folding {!process_one} — first-match-wins, per-frame cascades,
    verdict application order, stats and recorded events — property-tested
    in [test_engine.ml] and by the [batch_equiv] oracle in [vw_check]. *)

val process_one : t -> Vw_stack.Hook.point -> Vw_net.Eth.t -> Vw_stack.Hook.verdict
(** Run one frame through the engine's handler for [point], control frames
    included — byte-for-byte the installed hook behaviour. *)

val process_batch :
  t -> Vw_stack.Hook.point -> Arena.t -> on_verdict:(int -> Vw_stack.Hook.verdict -> unit) -> int
(** [process_batch t point arena ~on_verdict] processes frames
    [0 .. Arena.length arena - 1] in order, storing each verdict in the
    arena and calling [on_verdict i v] immediately after frame [i] — the
    caller applies the verdict there (transmit / reinject), so DUP and
    REORDER reinjections interleave with the batch exactly as they would
    unbatched. Returns the number of frames processed: fewer than the
    batch length iff a STOP was requested mid-batch, in which case the
    cumulative stats are reconciled to cover only the processed prefix. *)

(** {1 Processing-cost model}

    On the paper's testbed the engine consumes real CPU per packet — the
    linear filter scan and the table updates are exactly what Figure 8
    measures. A simulation processes packets in zero simulated time, so to
    reproduce that experiment the engine can charge a configurable cost per
    inspected packet:

    [base + per_filter × filters_scanned + per_action × actions_fired]

    The charge is applied by withholding the packet for that long before it
    continues down/up the stack. The default is no model (fully
    transparent), which every functional test uses. *)

type cost_model = {
  cost_base : Vw_sim.Simtime.t;
  cost_per_filter : Vw_sim.Simtime.t;  (** per filter-table entry scanned *)
  cost_per_action : Vw_sim.Simtime.t;  (** per action executed for this packet *)
}

val set_cost_model : t -> cost_model option -> unit
val cost_model : t -> cost_model option
