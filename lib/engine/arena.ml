(* The preallocated frame arena of the batched hot path: parallel arrays
   holding one batch of frames plus the per-frame classification results
   ([fids], [scanned], [hits]) and verdicts. Allocated once and reused
   across batches; [clear] is O(1). See DESIGN.md §5. *)

let dummy_frame =
  Vw_net.Eth.make ~dst:Vw_net.Mac.broadcast ~src:Vw_net.Mac.broadcast
    ~ethertype:0 Bytes.empty

type t = {
  mutable frames : Vw_net.Eth.t array;
  mutable fids : int array;  (* -1 = no match, -2 = control frame *)
  mutable scanned : int array;  (* filters tested while classifying *)
  mutable hits : Bytes.t;  (* '\001' = index hit, '\000' = miss *)
  mutable verdicts : Vw_stack.Hook.verdict array;
  mutable n : int;
}

let no_match = -1
let control = -2

let create ?(capacity = 128) () =
  let capacity = max 1 capacity in
  {
    frames = Array.make capacity dummy_frame;
    fids = Array.make capacity no_match;
    scanned = Array.make capacity 0;
    hits = Bytes.make capacity '\000';
    verdicts = Array.make capacity Vw_stack.Hook.Drop;
    n = 0;
  }

let capacity t = Array.length t.frames
let length t = t.n
let clear t = t.n <- 0

let grow t =
  let cap = 2 * capacity t in
  let frames = Array.make cap dummy_frame in
  Array.blit t.frames 0 frames 0 t.n;
  t.frames <- frames;
  let fids = Array.make cap no_match in
  Array.blit t.fids 0 fids 0 t.n;
  t.fids <- fids;
  let scanned = Array.make cap 0 in
  Array.blit t.scanned 0 scanned 0 t.n;
  t.scanned <- scanned;
  let hits = Bytes.make cap '\000' in
  Bytes.blit t.hits 0 hits 0 t.n;
  t.hits <- hits;
  let verdicts = Array.make cap Vw_stack.Hook.Drop in
  Array.blit t.verdicts 0 verdicts 0 t.n;
  t.verdicts <- verdicts

let push t frame =
  if t.n = capacity t then grow t;
  t.frames.(t.n) <- frame;
  t.n <- t.n + 1

let frame t i =
  if i < 0 || i >= t.n then invalid_arg "Arena.frame: out of range";
  t.frames.(i)

let fid t i =
  if i < 0 || i >= t.n then invalid_arg "Arena.fid: out of range";
  t.fids.(i)

let verdict t i =
  if i < 0 || i >= t.n then invalid_arg "Arena.verdict: out of range";
  t.verdicts.(i)

let scanned t i =
  if i < 0 || i >= t.n then invalid_arg "Arena.scanned: out of range";
  t.scanned.(i)
