(** The preallocated frame arena of the batched hot path.

    One arena holds one batch: parallel arrays of frames, per-frame
    classification results and verdicts, all allocated once and reused
    across batches ({!clear} is O(1), {!push} only allocates on growth).
    {!Fie.process_batch} consumes a filled arena; the raw arrays are
    exposed (record fields) so {!Classifier.classify_batch} and the engine
    can walk them without bounds-checked accessors on the hot path. *)

type t = {
  mutable frames : Vw_net.Eth.t array;
  mutable fids : int array;
      (** per-frame matched filter, {!no_match}, or {!control} *)
  mutable scanned : int array;  (** filters tested while classifying *)
  mutable hits : Bytes.t;  (** ['\001'] = index hit, ['\000'] = miss *)
  mutable verdicts : Vw_stack.Hook.verdict array;
  mutable n : int;  (** frames in the batch; only [0, n) is meaningful *)
}

val no_match : int
(** −1: classified, no filter matched. *)

val control : int
(** −2: a VirtualWire control frame — never classified. *)

val create : ?capacity:int -> unit -> t
(** Preallocate for [capacity] frames (default 128; grows by doubling). *)

val capacity : t -> int
val length : t -> int

val clear : t -> unit
(** Empty the arena without releasing storage. *)

val push : t -> Vw_net.Eth.t -> unit
(** Append a frame to the batch. *)

(** Bounds-checked single-slot readers, for tests and cold callers. *)

val frame : t -> int -> Vw_net.Eth.t
val fid : t -> int -> int
val verdict : t -> int -> Vw_stack.Hook.verdict
val scanned : t -> int -> int
