module W = Vw_fsl.Wire.W
module R = Vw_fsl.Wire.R

type msg =
  | Init of { controller_nid : int; tables : bytes }
  | Start
  | Counter_update of { cid : int; value : int }
  | Term_status of { tid : int; status : bool }
  | Var_bind of { vid : int; value : bytes }
  | Report_stop of { nid : int }
  | Report_error of { nid : int; rule : int }

let to_payload msg =
  let w = W.create () in
  (match msg with
  | Init { controller_nid; tables } ->
      W.u8 w 0;
      W.u16 w controller_nid;
      W.bytes w tables
  | Start -> W.u8 w 1
  | Counter_update { cid; value } ->
      W.u8 w 2;
      W.u16 w cid;
      W.i64 w value
  | Term_status { tid; status } ->
      W.u8 w 3;
      W.u16 w tid;
      W.bool w status
  | Var_bind { vid; value } ->
      W.u8 w 4;
      W.u16 w vid;
      W.bytes w value
  | Report_stop { nid } ->
      W.u8 w 5;
      W.u16 w nid
  | Report_error { nid; rule } ->
      W.u8 w 6;
      W.u16 w nid;
      (* rule -1 marks engine-internal errors (cascade overflow) *)
      W.u16 w (rule land 0xffff));
  W.contents w

let of_payload b =
  try
    let r = R.of_bytes b in
    let msg =
      match R.u8 r with
      | 0 ->
          let controller_nid = R.u16 r in
          Init { controller_nid; tables = R.bytes r }
      | 1 -> Start
      | 2 ->
          let cid = R.u16 r in
          Counter_update { cid; value = R.i64 r }
      | 3 ->
          let tid = R.u16 r in
          Term_status { tid; status = R.bool r }
      | 4 ->
          let vid = R.u16 r in
          Var_bind { vid; value = R.bytes r }
      | 5 -> Report_stop { nid = R.u16 r }
      | 6 ->
          let nid = R.u16 r in
          let rule = R.u16 r in
          Report_error { nid; rule = (if rule = 0xffff then -1 else rule) }
      | n -> raise (R.Underflow (Printf.sprintf "bad control tag %d" n))
    in
    Ok msg
  with R.Underflow what -> Error (Printf.sprintf "control: %s" what)

let to_frame ~src ~dst msg =
  Vw_net.Eth.make ~dst ~src ~ethertype:Vw_net.Eth.ethertype_vw_control
    (to_payload msg)

let pp ppf = function
  | Init { controller_nid; tables } ->
      Format.fprintf ppf "INIT(controller=n%d, %d table bytes)" controller_nid
        (Bytes.length tables)
  | Start -> Format.pp_print_string ppf "START"
  | Counter_update { cid; value } ->
      Format.fprintf ppf "COUNTER_UPDATE(c%d=%d)" cid value
  | Term_status { tid; status } ->
      Format.fprintf ppf "TERM_STATUS(t%d=%b)" tid status
  | Var_bind { vid; value } ->
      Format.fprintf ppf "VAR_BIND(v%d=0x%s)" vid (Vw_util.Hexutil.to_hex value)
  | Report_stop { nid } -> Format.fprintf ppf "REPORT_STOP(n%d)" nid
  | Report_error { nid; rule } ->
      Format.fprintf ppf "REPORT_ERROR(n%d, rule %d)" nid rule
