let src = Logs.Src.create "vw.fie" ~doc:"Fault Injection/Analysis Engine"

module Log = (val Logs.src_log src : Logs.LOG)
module Tables = Vw_fsl.Tables
module Ast = Vw_fsl.Ast
module Rec = Vw_obs.Recorder
module Ev = Vw_obs.Event
module Mx = Vw_obs.Metrics

type report =
  | Stop_report of { nid : int }
  | Error_report of { nid : int; rule : int }

type stats = {
  mutable packets_inspected : int;
  mutable packets_matched : int;
  mutable filters_scanned : int;
  mutable index_hits : int;
  mutable index_misses : int;
  mutable counter_updates : int;
  mutable terms_evaluated : int;
  mutable conditions_evaluated : int;
  mutable actions_executed : int;
  mutable control_sent : int;
  mutable control_received : int;
  mutable faults_drop : int;
  mutable faults_delay : int;
  mutable faults_reorder : int;
  mutable faults_dup : int;
  mutable faults_modify : int;
  mutable cascade_overflows : int;
}

let new_stats () =
  {
    packets_inspected = 0;
    packets_matched = 0;
    filters_scanned = 0;
    index_hits = 0;
    index_misses = 0;
    counter_updates = 0;
    terms_evaluated = 0;
    conditions_evaluated = 0;
    actions_executed = 0;
    control_sent = 0;
    control_received = 0;
    faults_drop = 0;
    faults_delay = 0;
    faults_reorder = 0;
    faults_dup = 0;
    faults_modify = 0;
    cascade_overflows = 0;
  }

(* A fault action of this node, precomputed at init for the per-packet
   check. [af_src]/[af_dst] are the MACs a matching frame must carry
   (resolved once from the node table); the fid/direction checks are
   static and encoded by the (point, fid) bucket the fault lives in. *)
type armed_fault = {
  af_did : int; (* owning condition *)
  af_aid : int;
  af_src : Vw_net.Mac.t;
  af_dst : Vw_net.Mac.t;
  af_kind :
    [ `Drop
    | `Delay of Vw_sim.Simtime.t
    | `Reorder of int * int array
    | `Dup
    | `Modify of (int * bytes) option ];
}

(* An event counter this node observes at one hook point, precomputed per
   (point, fid) so the per-packet path touches only candidates. *)
type observer = { ob_cid : int; ob_src : Vw_net.Mac.t; ob_dst : Vw_net.Mac.t }

type runtime = {
  tables : Tables.t;
  compiled : Tables.Compiled.t; (* the SoA form the hot path walks *)
  controller_nid : int;
  nid : int;
  term_local : bool array; (* tid -> this node evaluates the term *)
  cond_local : bool array; (* did -> this node evaluates the condition *)
  counter_values : int array;
  counter_enabled : bool array;
  term_status : bool array;
  cond_status : bool array;
  bindings : bytes option array;
  observing_counters : observer array array array;
      (* [point].[fid] -> counters this node may bump for that match *)
  faults_by_fid : armed_fault array array array;
      (* [point].[fid] -> armed faults in action-id order *)
  reorder_buffers : (int, Vw_net.Eth.t Queue.t) Hashtbl.t;
  (* reusable cascade worklists, sized to the table dimensions *)
  ws_counters : Vw_util.Worklist.t;
  ws_counters_next : Vw_util.Worklist.t;
  ws_terms : Vw_util.Worklist.t;
  ws_conds : Vw_util.Worklist.t;
  mutable started : bool;
  mutable last_match : Vw_sim.Simtime.t option;
}

let pindex = function Vw_stack.Hook.Ingress -> 0 | Vw_stack.Hook.Egress -> 1

type cost_model = {
  cost_base : Vw_sim.Simtime.t;
  cost_per_filter : Vw_sim.Simtime.t;
  cost_per_action : Vw_sim.Simtime.t;
}

(* Histogram handles, resolved once against the run's metrics registry when
   observability is enabled; [None] keeps the per-packet path free of even
   a registry lookup. *)
type mx = {
  mx_cascade_depth : Mx.histogram;
  mx_filters_scanned : Mx.histogram;
  mx_delay_occupancy : Mx.histogram;
  mx_reorder_occupancy : Mx.histogram;
  mx_control_fanout : Mx.histogram;
}

type t = {
  hst : Vw_stack.Host.t;
  stats : stats;
  cls : Classifier.scan_stats; (* cumulative classifier counters *)
  mutable rt : runtime option;
  mutable report_handler : report -> unit;
  mutable egress_hook : Vw_stack.Host.hook_id option;
  mutable ingress_hook : Vw_stack.Host.hook_id option;
  mutable cost : cost_model option;
  mutable obs : Rec.t; (* flight recorder; Rec.null = disabled, no-op *)
  mutable mx : mx option;
  mutable delayed_inflight : int; (* DELAY-stolen frames not yet reinjected *)
}

let host t = t.hst

let stats t =
  (* mirror the classifier's cumulative counters at read time *)
  t.stats.filters_scanned <- t.cls.Classifier.filters_scanned;
  t.stats.index_hits <- t.cls.Classifier.index_hits;
  t.stats.index_misses <- t.cls.Classifier.index_misses;
  t.stats
let stats_fields (s : stats) =
  [
    ("packets_inspected", s.packets_inspected);
    ("packets_matched", s.packets_matched);
    ("filters_scanned", s.filters_scanned);
    ("index_hits", s.index_hits);
    ("index_misses", s.index_misses);
    ("counter_updates", s.counter_updates);
    ("terms_evaluated", s.terms_evaluated);
    ("conditions_evaluated", s.conditions_evaluated);
    ("actions_executed", s.actions_executed);
    ("control_sent", s.control_sent);
    ("control_received", s.control_received);
    ("faults_drop", s.faults_drop);
    ("faults_delay", s.faults_delay);
    ("faults_reorder", s.faults_reorder);
    ("faults_dup", s.faults_dup);
    ("faults_modify", s.faults_modify);
    ("cascade_overflows", s.cascade_overflows);
  ]

let initialized t = t.rt <> None
let started t = match t.rt with Some rt -> rt.started | None -> false
let my_nid t = Option.map (fun rt -> rt.nid) t.rt
let set_report_handler t fn = t.report_handler <- fn
let recorder t = t.obs

let set_observability t ~recorder ~metrics =
  t.obs <- recorder;
  (match t.rt with Some rt -> Rec.set_nid recorder rt.nid | None -> ());
  t.mx <-
    (if Mx.enabled metrics then
       Some
         {
           mx_cascade_depth =
             Mx.histogram metrics
               ~buckets:[| 1; 2; 3; 4; 6; 8; 12; 16; 24; 32 |]
               "fie.cascade_depth";
           mx_filters_scanned =
             Mx.histogram metrics
               ~buckets:[| 0; 1; 2; 4; 8; 16; 32; 64 |]
               "fie.filters_scanned_per_packet";
           mx_delay_occupancy =
             Mx.histogram metrics "fie.delay_queue_occupancy";
           mx_reorder_occupancy =
             Mx.histogram metrics "fie.reorder_queue_occupancy";
           mx_control_fanout =
             Mx.histogram metrics
               ~buckets:[| 0; 1; 2; 4; 8; 16; 32 |]
               "fie.control_fanout_per_cascade";
         }
     else None)

let ctl_of_msg = function
  | Control.Init _ -> Ev.C_init
  | Control.Start -> Ev.C_start
  | Control.Counter_update { cid; value } -> Ev.C_counter_update { cid; value }
  | Control.Term_status { tid; status } -> Ev.C_term_status { tid; status }
  | Control.Var_bind { vid; _ } -> Ev.C_var_bind { vid }
  | Control.Report_stop { nid } -> Ev.C_report_stop { nid }
  | Control.Report_error { nid; rule } -> Ev.C_report_error { nid; rule }

let last_match_time t =
  match t.rt with Some rt -> rt.last_match | None -> None

let counter_lookup t name =
  match t.rt with
  | None -> None
  | Some rt -> (
      match Tables.counter_by_name rt.tables name with
      | Some c -> Some (rt, c.Tables.cid)
      | None -> None)

let counter_value t name =
  Option.map (fun (rt, cid) -> rt.counter_values.(cid)) (counter_lookup t name)

let counter_enabled t name =
  Option.map (fun (rt, cid) -> rt.counter_enabled.(cid)) (counter_lookup t name)

let counters t =
  match t.rt with
  | None -> []
  | Some rt ->
      Array.to_list rt.tables.Tables.counters
      |> List.map (fun (c : Tables.counter_entry) ->
             ( c.cname,
               rt.counter_values.(c.cid),
               rt.counter_enabled.(c.cid) ))

let condition_status t did =
  match t.rt with
  | Some rt when did >= 0 && did < Array.length rt.cond_status ->
      Some (rt.cond_status.(did))
  | _ -> None

let term_status t tid =
  match t.rt with
  | Some rt when tid >= 0 && tid < Array.length rt.term_status ->
      Some (rt.term_status.(tid))
  | _ -> None

let now t = Vw_sim.Engine.now (Vw_stack.Host.engine t.hst)

(* --- term & condition evaluation ---

   Both dispatch over the compiled SoA tables; Tables.Compiled property
   tests pin them to the record-form reference evaluation. *)

let eval_term rt tid =
  Tables.Compiled.eval_term rt.compiled ~counter_values:rt.counter_values tid

let eval_cond rt did =
  Tables.Compiled.eval_cond rt.compiled ~term_status:rt.term_status did

(* --- control-plane sending --- *)

let rec send_control t ~dst_nid msg =
  match t.rt with
  | None -> ()
  | Some rt ->
      if dst_nid = rt.nid then process_control t msg
      else begin
        t.stats.control_sent <- t.stats.control_sent + 1;
        if Rec.enabled t.obs then
          ignore (Rec.emit_control_sent t.obs ~dst_nid ~ctl:(ctl_of_msg msg));
        let dst = rt.tables.Tables.nodes.(dst_nid).Tables.nmac in
        let frame =
          Control.to_frame ~src:(Vw_stack.Host.mac t.hst) ~dst msg
        in
        Vw_stack.Host.send_frame t.hst frame
      end

and report t report_value =
  match t.rt with
  | None -> ()
  | Some rt ->
      if Rec.enabled t.obs then begin
        match report_value with
        | Stop_report { nid } ->
            ignore (Rec.emit_report_raised t.obs ~nid ~rule:None)
        | Error_report { nid; rule } ->
            ignore (Rec.emit_report_raised t.obs ~nid ~rule:(Some rule))
      end;
      let msg =
        match report_value with
        | Stop_report { nid } -> Control.Report_stop { nid }
        | Error_report { nid; rule } -> Control.Report_error { nid; rule }
      in
      if rt.nid = rt.controller_nid then t.report_handler report_value
      else send_control t ~dst_nid:rt.controller_nid msg

(* --- action execution --- *)

and execute_action t rt ~did ~aid ~changed =
  t.stats.actions_executed <- t.stats.actions_executed + 1;
  if Rec.enabled t.obs then ignore (Rec.emit_action_fired t.obs ~did ~aid);
  let set_value cid v =
    if rt.counter_values.(cid) <> v then begin
      let delta = v - rt.counter_values.(cid) in
      rt.counter_values.(cid) <- v;
      t.stats.counter_updates <- t.stats.counter_updates + 1;
      if Rec.enabled t.obs then
        ignore (Rec.emit_counter_changed t.obs ~cid ~value:v ~delta);
      ignore (Vw_util.Worklist.add changed cid)
    end
  in
  (* the counter arithmetic that dominates cascades dispatches on the
     compiled int descriptor; the cold cases fall back on the record *)
  let cp = rt.compiled in
  let kind = cp.Tables.Compiled.a_kind.(aid) in
  if kind < Tables.Compiled.k_drop then begin
    let cid = cp.Tables.Compiled.a_arg1.(aid) in
    if kind = Tables.Compiled.k_assign then begin
      rt.counter_enabled.(cid) <- true;
      set_value cid cp.Tables.Compiled.a_arg2.(aid)
    end
    else if kind = Tables.Compiled.k_enable then
      rt.counter_enabled.(cid) <- true
    else if kind = Tables.Compiled.k_disable then
      rt.counter_enabled.(cid) <- false
    else if kind = Tables.Compiled.k_incr then
      set_value cid (rt.counter_values.(cid) + cp.Tables.Compiled.a_arg2.(aid))
    else if kind = Tables.Compiled.k_decr then
      set_value cid (rt.counter_values.(cid) - cp.Tables.Compiled.a_arg2.(aid))
    else if kind = Tables.Compiled.k_reset then set_value cid 0
    else if kind = Tables.Compiled.k_set_curtime then
      set_value cid (int_of_float (Vw_sim.Simtime.to_ms (now t)))
    else
      set_value cid
        (int_of_float (Vw_sim.Simtime.to_ms (now t)) - rt.counter_values.(cid))
  end
  else
    match rt.tables.Tables.actions.(aid).Tables.act with
    | Tables.A_bind_var (vid, value) ->
        rt.bindings.(vid) <- Some value;
        Array.iter
          (fun (n : Tables.node_entry) ->
            if n.nid <> rt.nid then
              send_control t ~dst_nid:n.nid (Control.Var_bind { vid; value }))
          rt.tables.Tables.nodes
    | Tables.A_fail nid -> if nid = rt.nid then Vw_stack.Host.fail t.hst
    | Tables.A_stop -> report t (Stop_report { nid = rt.nid })
    | Tables.A_flag_error rule -> report t (Error_report { nid = rt.nid; rule })
    | Tables.A_drop _ | Tables.A_delay _ | Tables.A_reorder _ | Tables.A_dup _
    | Tables.A_modify _ ->
        (* Faults are level-armed through their condition's status; nothing
           to do at the edge. *)
        ()
    | Tables.A_assign _ | Tables.A_enable _ | Tables.A_disable _
    | Tables.A_incr _ | Tables.A_decr _ | Tables.A_reset _
    | Tables.A_set_curtime _ | Tables.A_elapsed_time _ ->
        (* kind < k_drop: handled by the descriptor dispatch above *)
        assert false

(* --- the cascade (Figure 3 / Figure 4b) ---

   Seeds: counters whose values changed (locally or via control message)
   and/or terms whose status was pushed from a remote evaluator. Each round
   re-evaluates affected local terms, then affected local conditions from a
   snapshot, fires rising edges, and feeds resulting counter changes into
   the next round. *)

and cascade t rt ~changed_counters ~changed_terms =
  let module W = Vw_util.Worklist in
  let max_rounds = 100 in
  let round = ref 0 in
  let ctl_sent_before = t.stats.control_sent in
  (* double-buffered counter worklists: [cur] feeds this round, actions
     fired this round fill [next]; both are owned by the runtime and only
     reset here, so a cascade allocates nothing per round *)
  let cur = ref rt.ws_counters in
  let next = ref rt.ws_counters_next in
  W.clear !cur;
  List.iter (fun cid -> ignore (W.add !cur cid)) changed_counters;
  let ext_terms = ref changed_terms in
  let continue = ref true in
  while !continue do
    incr round;
    if !round > max_rounds then begin
      t.stats.cascade_overflows <- t.stats.cascade_overflows + 1;
      Log.err (fun m ->
          m "%s: rule cascade did not converge" (Vw_stack.Host.name t.hst));
      report t (Error_report { nid = rt.nid; rule = -1 });
      continue := false
    end
    else begin
      let cp = rt.compiled in
      (* 1. ship counter updates to remote term evaluators *)
      W.iter
        (fun cid ->
          if cp.Tables.Compiled.c_owner.(cid) = rt.nid then
            for k = cp.Tables.Compiled.cs_start.(cid)
                to cp.Tables.Compiled.cs_start.(cid + 1) - 1 do
              send_control t ~dst_nid:cp.Tables.Compiled.cs_subs.(k)
                (Control.Counter_update
                   { cid; value = rt.counter_values.(cid) })
            done)
        !cur;
      (* 2. re-evaluate local terms over the changed counters *)
      W.clear rt.ws_terms;
      W.iter
        (fun cid ->
          for k = cp.Tables.Compiled.ct_start.(cid)
              to cp.Tables.Compiled.ct_start.(cid + 1) - 1 do
            let tid = cp.Tables.Compiled.ct_terms.(k) in
            if rt.term_local.(tid) then ignore (W.add rt.ws_terms tid)
          done)
        !cur;
      W.sort rt.ws_terms;
      (* terms that flipped (locally or pushed from a remote evaluator)
         feed the conditions they participate in *)
      W.clear rt.ws_conds;
      let add_conditions tid =
        for k = cp.Tables.Compiled.tc_start.(tid)
            to cp.Tables.Compiled.tc_start.(tid + 1) - 1 do
          let did = cp.Tables.Compiled.tc_conds.(k) in
          if rt.cond_local.(did) then ignore (W.add rt.ws_conds did)
        done
      in
      W.iter
        (fun tid ->
          t.stats.terms_evaluated <- t.stats.terms_evaluated + 1;
          let status = eval_term rt tid in
          if status <> rt.term_status.(tid) then begin
            rt.term_status.(tid) <- status;
            if Rec.enabled t.obs then
              ignore (Rec.emit_term_flipped t.obs ~tid ~status);
            for k = cp.Tables.Compiled.ts_start.(tid)
                to cp.Tables.Compiled.ts_start.(tid + 1) - 1 do
              send_control t ~dst_nid:cp.Tables.Compiled.ts_subs.(k)
                (Control.Term_status { tid; status })
            done;
            add_conditions tid
          end)
        rt.ws_terms;
      List.iter add_conditions !ext_terms;
      ext_terms := [];
      W.sort rt.ws_conds;
      (* 3. snapshot-evaluate affected conditions, collect rising edges *)
      let risen = ref [] in
      W.iter
        (fun did ->
          t.stats.conditions_evaluated <- t.stats.conditions_evaluated + 1;
          let status = eval_cond rt did in
          if status && not rt.cond_status.(did) then begin
            if Rec.enabled t.obs then
              ignore (Rec.emit_condition_rose t.obs ~did);
            risen := did :: !risen
          end;
          rt.cond_status.(did) <- status)
        rt.ws_conds;
      (* 4. fire the risen conditions' local actions, in ascending did
         order (the worklist was sorted; [risen] was built by prepending) *)
      W.clear !next;
      List.iter
        (fun did ->
          for k = cp.Tables.Compiled.ca_start.(did)
              to cp.Tables.Compiled.ca_start.(did + 1) - 1 do
            if cp.Tables.Compiled.ca_nid.(k) = rt.nid then
              execute_action t rt ~did ~aid:cp.Tables.Compiled.ca_aid.(k)
                ~changed:!next
          done)
        (List.rev !risen);
      let tmp = !cur in
      cur := !next;
      next := tmp;
      if W.is_empty !cur then continue := false
    end
  done;
  match t.mx with
  | None -> ()
  | Some m ->
      Mx.observe m.mx_cascade_depth !round;
      Mx.observe m.mx_control_fanout (t.stats.control_sent - ctl_sent_before)

(* --- control-plane receive --- *)

and process_control t msg =
  t.stats.control_received <- t.stats.control_received + 1;
  match (msg, t.rt) with
  | Control.Init { controller_nid; tables }, _ -> (
      match Vw_fsl.Tables_codec.of_bytes tables with
      | Error e ->
          Log.err (fun m -> m "%s: bad INIT: %s" (Vw_stack.Host.name t.hst) e)
      | Ok tables -> (
          match init_local t ~controller_nid tables with
          | Ok () -> ()
          | Error e ->
              Log.info (fun m ->
                  m "%s: not participating: %s" (Vw_stack.Host.name t.hst) e)))
  | Control.Start, Some rt -> if not rt.started then start_local t
  | Control.Start, None -> ()
  | Control.Counter_update { cid; value }, Some rt ->
      if cid < Array.length rt.counter_values then begin
        if rt.counter_values.(cid) <> value then begin
          let delta = value - rt.counter_values.(cid) in
          rt.counter_values.(cid) <- value;
          if Rec.enabled t.obs then
            ignore (Rec.emit_counter_changed t.obs ~cid ~value ~delta);
          cascade t rt ~changed_counters:[ cid ] ~changed_terms:[]
        end
      end
  | Control.Term_status { tid; status }, Some rt ->
      if tid < Array.length rt.term_status then begin
        if rt.term_status.(tid) <> status then begin
          rt.term_status.(tid) <- status;
          if Rec.enabled t.obs then
            ignore (Rec.emit_term_flipped t.obs ~tid ~status);
          cascade t rt ~changed_counters:[] ~changed_terms:[ tid ]
        end
      end
  | Control.Var_bind { vid; value }, Some rt ->
      if vid < Array.length rt.bindings then rt.bindings.(vid) <- Some value
  | Control.Report_stop { nid }, Some _ -> t.report_handler (Stop_report { nid })
  | Control.Report_error { nid; rule }, Some _ ->
      t.report_handler (Error_report { nid; rule })
  | (Control.Counter_update _ | Control.Term_status _ | Control.Var_bind _
    | Control.Report_stop _ | Control.Report_error _ ), None ->
      ()

(* --- initialization --- *)

and init_local t ~controller_nid tables =
  match Tables.node_by_mac tables (Vw_stack.Host.mac t.hst) with
  | None -> Error "host MAC not in the node table"
  | Some node ->
      let nid = node.Tables.nid in
      let nodes = tables.Tables.nodes in
      let n_nodes = Array.length nodes in
      let n_filters = Array.length tables.Tables.filters in
      (* The compiler rejects malformed REORDER permutations, but tables
         also arrive over the wire; re-validate here so a corrupt
         permutation degrades to the identity instead of crashing the
         release path. *)
      let normalize_reorder ~aid n order =
        let ok =
          n >= 1
          && Array.length order = n
          && List.sort compare (Array.to_list order)
             = List.init n (fun i -> i + 1)
        in
        if ok then order
        else begin
          Log.warn (fun m ->
              m "%s: action %d: invalid REORDER permutation, using identity"
                (Vw_stack.Host.name t.hst) aid);
          Array.init (max n 0) (fun i -> i + 1)
        end
      in
      let armed =
        Array.to_list tables.Tables.conds
        |> List.concat_map (fun (cond : Tables.cond_entry) ->
               List.filter_map
                 (fun (anid, aid) ->
                   if anid <> nid then None
                   else
                     let entry = tables.Tables.actions.(aid) in
                     let kind =
                       match entry.Tables.act with
                       | Tables.A_drop _ -> Some `Drop
                       | Tables.A_delay (_, d) -> Some (`Delay d)
                       | Tables.A_reorder (_, n, order) ->
                           Some (`Reorder (n, normalize_reorder ~aid n order))
                       | Tables.A_dup _ -> Some `Dup
                       | Tables.A_modify (_, pat) -> Some (`Modify pat)
                       | Tables.A_assign _ | Tables.A_enable _
                       | Tables.A_disable _ | Tables.A_incr _ | Tables.A_decr _
                       | Tables.A_reset _ | Tables.A_set_curtime _
                       | Tables.A_elapsed_time _ | Tables.A_fail _
                       | Tables.A_stop | Tables.A_flag_error _
                       | Tables.A_bind_var _ ->
                           None
                     in
                     let spec =
                       match entry.Tables.act with
                       | Tables.A_drop s
                       | Tables.A_delay (s, _)
                       | Tables.A_reorder (s, _, _)
                       | Tables.A_dup s
                       | Tables.A_modify (s, _) ->
                           Some s
                       | _ -> None
                     in
                     match (kind, spec) with
                     | Some af_kind, Some (spec : Tables.fspec)
                       when spec.Tables.fs_from >= 0
                            && spec.Tables.fs_from < n_nodes
                            && spec.Tables.fs_to >= 0
                            && spec.Tables.fs_to < n_nodes ->
                         Some
                           ( spec,
                             {
                               af_did = cond.Tables.did;
                               af_aid = aid;
                               af_src = nodes.(spec.Tables.fs_from).Tables.nmac;
                               af_dst = nodes.(spec.Tables.fs_to).Tables.nmac;
                               af_kind;
                             } )
                     | _ -> None)
                 cond.Tables.cond_actions)
        |> List.sort (fun (_, a) (_, b) -> compare a.af_aid b.af_aid)
      in
      (* Bucket armed faults by (hook point, fid): a Send fault can only
         fire at this node's egress (and only if we are the sender), a Recv
         fault at our ingress. The per-packet path then walks just the
         candidates for the matched filter, in action-id order. *)
      let fault_acc = [| Array.make n_filters []; Array.make n_filters [] |] in
      List.iter
        (fun ((spec : Tables.fspec), af) ->
          let p =
            match spec.Tables.fs_dir with
            | Ast.Send when spec.Tables.fs_from = nid -> Some 1 (* Egress *)
            | Ast.Recv when spec.Tables.fs_to = nid -> Some 0 (* Ingress *)
            | Ast.Send | Ast.Recv -> None
          in
          match p with
          | Some p when spec.Tables.fs_fid >= 0 && spec.Tables.fs_fid < n_filters
            ->
              fault_acc.(p).(spec.Tables.fs_fid) <-
                af :: fault_acc.(p).(spec.Tables.fs_fid)
          | _ -> ())
        armed;
      let faults_by_fid =
        Array.map (Array.map (fun l -> Array.of_list (List.rev l))) fault_acc
      in
      (* Same bucketing for the event counters this node observes, with the
         expected endpoint MACs resolved once. *)
      let obs_acc = [| Array.make n_filters []; Array.make n_filters [] |] in
      Array.iter
        (fun (c : Tables.counter_entry) ->
          match c.Tables.ckind with
          | Tables.Local -> ()
          | Tables.Event { e_fid; e_from; e_to; e_dir } ->
              if
                e_fid >= 0 && e_fid < n_filters && e_from >= 0
                && e_from < n_nodes && e_to >= 0 && e_to < n_nodes
              then begin
                let ob =
                  {
                    ob_cid = c.Tables.cid;
                    ob_src = nodes.(e_from).Tables.nmac;
                    ob_dst = nodes.(e_to).Tables.nmac;
                  }
                in
                match e_dir with
                | Ast.Send when e_from = nid ->
                    obs_acc.(1).(e_fid) <- ob :: obs_acc.(1).(e_fid)
                | Ast.Recv when e_to = nid ->
                    obs_acc.(0).(e_fid) <- ob :: obs_acc.(0).(e_fid)
                | Ast.Send | Ast.Recv -> ()
              end)
        tables.Tables.counters;
      let observing_counters =
        Array.map (Array.map (fun l -> Array.of_list (List.rev l))) obs_acc
      in
      let n_counters = Array.length tables.Tables.counters in
      let compiled = Tables.compile tables in
      let term_local =
        Array.map (fun (tm : Tables.term_entry) -> tm.eval_node = nid)
          tables.Tables.terms
      in
      let cond_local =
        Array.map
          (fun (c : Tables.cond_entry) -> List.mem nid c.Tables.eval_nodes)
          tables.Tables.conds
      in
      let rt =
        {
          tables;
          compiled;
          controller_nid;
          nid;
          term_local;
          cond_local;
          counter_values = Array.make n_counters 0;
          counter_enabled = Array.make n_counters false;
          term_status = Array.make (Array.length tables.Tables.terms) false;
          cond_status = Array.make (Array.length tables.Tables.conds) false;
          bindings = Array.make (Array.length tables.Tables.vars) None;
          observing_counters;
          faults_by_fid;
          reorder_buffers = Hashtbl.create 4;
          ws_counters = Vw_util.Worklist.create n_counters;
          ws_counters_next = Vw_util.Worklist.create n_counters;
          ws_terms =
            Vw_util.Worklist.create (Array.length tables.Tables.terms);
          ws_conds =
            Vw_util.Worklist.create (Array.length tables.Tables.conds);
          started = false;
          last_match = None;
        }
      in
      (* Initial term/condition statuses from the all-zero counter state —
         every node computes the same snapshot, so no start-up burst of
         control messages is needed. *)
      Array.iteri
        (fun tid _ -> rt.term_status.(tid) <- eval_term rt tid)
        tables.Tables.terms;
      Array.iteri
        (fun did _ -> rt.cond_status.(did) <- eval_cond rt did)
        tables.Tables.conds;
      t.rt <- Some rt;
      Rec.set_nid t.obs nid;
      Ok ()

and start_local t =
  match t.rt with
  | None -> ()
  | Some rt ->
      rt.started <- true;
      (* Fire the conditions that are true at scenario start (the TRUE
         rules, and any degenerate always-true conditions). *)
      let changed =
        Vw_util.Worklist.create (Array.length rt.counter_values)
      in
      Array.iter
        (fun (cond : Tables.cond_entry) ->
          if
            rt.cond_status.(cond.Tables.did)
            && List.mem rt.nid cond.Tables.eval_nodes
          then
            List.iter
              (fun (nid, aid) ->
                if nid = rt.nid then
                  execute_action t rt ~did:cond.Tables.did ~aid ~changed)
              cond.Tables.cond_actions)
        rt.tables.Tables.conds;
      cascade t rt
        ~changed_counters:(Vw_util.Worklist.to_list changed)
        ~changed_terms:[]

(* --- the per-packet path --- *)

let reinject t point frame =
  Vw_stack.Host.reinject t.hst point
    ~from_priority:Vw_stack.Hook.priority_virtualwire frame

let apply_fault t rt point (frame : Vw_net.Eth.t) (af : armed_fault) =
  if Rec.enabled t.obs then begin
    let fault =
      match af.af_kind with
      | `Drop -> Ev.Drop
      | `Delay _ -> Ev.Delay
      | `Reorder _ -> Ev.Reorder
      | `Dup -> Ev.Dup
      | `Modify _ -> Ev.Modify
    in
    ignore
      (Rec.emit_fault_applied t.obs ~did:af.af_did ~aid:af.af_aid ~fault)
  end;
  match af.af_kind with
  | `Drop ->
      t.stats.faults_drop <- t.stats.faults_drop + 1;
      Vw_stack.Hook.Drop
  | `Delay duration ->
      t.stats.faults_delay <- t.stats.faults_delay + 1;
      t.delayed_inflight <- t.delayed_inflight + 1;
      (match t.mx with
      | Some m -> Mx.observe m.mx_delay_occupancy t.delayed_inflight
      | None -> ());
      ignore
        (Vw_stack.Host.set_timer t.hst ~delay:duration (fun () ->
             t.delayed_inflight <- t.delayed_inflight - 1;
             reinject t point frame));
      Vw_stack.Hook.Stolen
  | `Reorder (n, order) ->
      t.stats.faults_reorder <- t.stats.faults_reorder + 1;
      let buffer =
        match Hashtbl.find_opt rt.reorder_buffers af.af_aid with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace rt.reorder_buffers af.af_aid q;
            q
      in
      Queue.add frame buffer;
      (match t.mx with
      | Some m -> Mx.observe m.mx_reorder_occupancy (Queue.length buffer)
      | None -> ());
      if Queue.length buffer >= n then begin
        let frames = Array.of_seq (Queue.to_seq buffer) in
        Queue.clear buffer;
        (* release in the user's permutation, as one burst; indices were
           validated at compile time and normalized at init, but clamp
           anyway — a bad index must never crash the release path *)
        let m = Array.length frames in
        if m > 0 then
          Array.iter
            (fun idx ->
              let i = max 0 (min (m - 1) (idx - 1)) in
              reinject t point frames.(i))
            order
      end;
      Vw_stack.Hook.Stolen
  | `Dup ->
      t.stats.faults_dup <- t.stats.faults_dup + 1;
      reinject t point frame;
      Vw_stack.Hook.Accept frame
  | `Modify pat ->
      t.stats.faults_modify <- t.stats.faults_modify + 1;
      let data = Vw_net.Eth.to_bytes frame in
      (match pat with
      | Some (offset, b) ->
          let len = min (Bytes.length b) (max 0 (Bytes.length data - offset)) in
          if len > 0 && offset >= 0 then Bytes.blit b 0 data offset len
      | None ->
          (* Random perturbation, sparing the Ethernet header so the frame
             still reaches its destination and fails there (checksum). *)
          let prng = Vw_sim.Engine.prng (Vw_stack.Host.engine t.hst) in
          let span = Bytes.length data - Vw_net.Eth.header_size in
          if span > 0 then
            for _ = 1 to 3 do
              let pos = Vw_net.Eth.header_size + Vw_util.Prng.int prng span in
              Bytes.set data pos
                (Char.chr
                   (Char.code (Bytes.get data pos)
                   lxor (1 + Vw_util.Prng.int prng 255)))
            done);
      Vw_stack.Hook.Accept (Vw_net.Eth.of_bytes data)

(* Withhold an accepted packet for the configured processing cost before it
   continues through the rest of the chain. *)
let charge_cost t point ~scanned ~actions verdict =
  match t.cost with
  | None -> verdict
  | Some cm ->
      let cost =
        Vw_sim.Simtime.(
          cm.cost_base
          + (scanned * cm.cost_per_filter)
          + (actions * cm.cost_per_action))
      in
      if cost <= 0 then verdict
      else begin
        match verdict with
        | Vw_stack.Hook.Accept frame ->
            ignore
              (Vw_sim.Engine.schedule_after
                 (Vw_stack.Host.engine t.hst)
                 ~delay:cost
                 (fun () -> reinject t point frame));
            Vw_stack.Hook.Stolen
        | (Vw_stack.Hook.Drop | Vw_stack.Hook.Stolen) as v -> v
      end

(* Everything after classification: observers → cascade → first armed
   fault → cost charge. [fid < 0] means "no filter matched". Shared by the
   single-packet hooks and the pre-classified batch path, so the two
   cannot drift. *)
let process_classified t rt point (frame : Vw_net.Eth.t) ~fid ~scanned =
  let actions_before = t.stats.actions_executed in
  (match t.mx with
  | Some m -> Mx.observe m.mx_filters_scanned scanned
  | None -> ());
  if fid < 0 then
    charge_cost t point ~scanned ~actions:0 (Vw_stack.Hook.Accept frame)
  else begin
    t.stats.packets_matched <- t.stats.packets_matched + 1;
    rt.last_match <- Some (now t);
    (* the classification event roots the causal chain for everything
       this packet triggers, until the verdict is decided *)
    let recording = Rec.enabled t.obs in
    let prev_cause = if recording then Rec.cause t.obs else -1 in
    if recording then begin
      let obs_point =
        match point with
        | Vw_stack.Hook.Ingress -> Ev.Ingress
        | Vw_stack.Hook.Egress -> Ev.Egress
      in
      ignore (Rec.emit_packet_classified t.obs ~point:obs_point ~fid)
    end;
    let p = pindex point in
    (* 1. counter updates: only the observers precomputed for this
       (point, fid) *)
    let changed = ref [] in
    Array.iter
      (fun ob ->
        if
          rt.counter_enabled.(ob.ob_cid)
          && Vw_net.Mac.equal frame.src ob.ob_src
          && Vw_net.Mac.equal frame.dst ob.ob_dst
        then begin
          rt.counter_values.(ob.ob_cid) <- rt.counter_values.(ob.ob_cid) + 1;
          t.stats.counter_updates <- t.stats.counter_updates + 1;
          if recording then
            ignore
              (Rec.emit_counter_changed t.obs ~cid:ob.ob_cid
                 ~value:rt.counter_values.(ob.ob_cid) ~delta:1);
          changed := ob.ob_cid :: !changed
        end)
      rt.observing_counters.(p).(fid);
    (* 2. cascade *)
    if !changed <> [] then
      cascade t rt ~changed_counters:(List.rev !changed) ~changed_terms:[];
    (* 3. apply the first armed fault for this (point, fid) whose
       condition holds and whose endpoints match *)
    let faults = rt.faults_by_fid.(p).(fid) in
    let n_faults = Array.length faults in
    let rec first_fault i =
      if i = n_faults then None
      else
        let af = faults.(i) in
        if
          rt.cond_status.(af.af_did)
          && Vw_net.Mac.equal frame.src af.af_src
          && Vw_net.Mac.equal frame.dst af.af_dst
        then Some af
        else first_fault (i + 1)
    in
    let verdict =
      match first_fault 0 with
      | Some af -> apply_fault t rt point frame af
      | None -> Vw_stack.Hook.Accept frame
    in
    if recording then Rec.set_cause t.obs prev_cause;
    charge_cost t point ~scanned
      ~actions:(t.stats.actions_executed - actions_before)
      verdict
  end

let handle_packet t point (frame : Vw_net.Eth.t) =
  t.stats.packets_inspected <- t.stats.packets_inspected + 1;
  match t.rt with
  | None -> Vw_stack.Hook.Accept frame
  | Some rt when not rt.started -> Vw_stack.Hook.Accept frame
  | Some rt ->
      let scanned_before = t.cls.Classifier.filters_scanned in
      let fid =
        match
          Classifier.classify_frame_c ~stats:t.cls rt.compiled
            ~bindings:rt.bindings frame
        with
        | Some fid -> fid
        | None -> -1
      in
      let scanned = t.cls.Classifier.filters_scanned - scanned_before in
      process_classified t rt point frame ~fid ~scanned

let control_ingress t (frame : Vw_net.Eth.t) =
  (match Control.of_payload frame.payload with
  | Ok msg ->
      if Rec.enabled t.obs then begin
        (* a control frame arriving off the wire roots a fresh causal
           context; stitching to the remote sender's chain happens
           offline by payload equality *)
        let prev_cause = Rec.cause t.obs in
        ignore (Rec.emit_control_received t.obs ~ctl:(ctl_of_msg msg));
        process_control t msg;
        Rec.set_cause t.obs prev_cause
      end
      else process_control t msg
  | Error e ->
      Log.err (fun m ->
          m "%s: undecodable control frame: %s" (Vw_stack.Host.name t.hst) e));
  Vw_stack.Hook.Stolen

let ingress_handler t (frame : Vw_net.Eth.t) =
  if frame.ethertype = Vw_net.Eth.ethertype_vw_control then
    control_ingress t frame
  else handle_packet t Vw_stack.Hook.Ingress frame

let egress_handler t (frame : Vw_net.Eth.t) =
  if frame.ethertype = Vw_net.Eth.ethertype_vw_control then
    (* our own control traffic is not subject to classification *)
    Vw_stack.Hook.Accept frame
  else handle_packet t Vw_stack.Hook.Egress frame

(* --- the batched hot path ---

   [process_one] is exactly the hook handler for [point]: the linear
   reference a batch must be indistinguishable from. [process_batch] runs
   a filled arena through it frame by frame — amortizing the recorder's
   slot claims, the classification pass (when sound) and the stop checks —
   while keeping per-frame semantics, ordering and stats identical to the
   fold (property-tested in test_engine and by the batch_equiv oracle). *)

let process_one t point (frame : Vw_net.Eth.t) =
  match point with
  | Vw_stack.Hook.Ingress -> ingress_handler t frame
  | Vw_stack.Hook.Egress -> egress_handler t frame

let process_batch t point (arena : Arena.t) ~on_verdict =
  let n = arena.Arena.n in
  let frames = arena.Arena.frames in
  let verdicts = arena.Arena.verdicts in
  let engine = Vw_stack.Host.engine t.hst in
  let recording = Rec.enabled t.obs in
  if recording then Rec.batch_begin t.obs ~hint:n;
  Fun.protect ~finally:(fun () -> if recording then Rec.batch_end t.obs)
  @@ fun () ->
  (* Pre-classify the whole batch only when classification cannot be
     perturbed mid-batch: no vars (a BIND_VAR fired by frame i would
     change how frame i+1 classifies) and no control frames (INIT/START
     change the runtime itself). Otherwise each frame classifies right
     before it is processed. Both orders give identical per-frame results
     because classification reads only tables and bindings. *)
  let pre =
    match t.rt with
    | Some rt when rt.started && Array.length rt.bindings = 0 ->
        let rec has_control i =
          i < n
          && (frames.(i).Vw_net.Eth.ethertype
              = Vw_net.Eth.ethertype_vw_control
             || has_control (i + 1))
        in
        if has_control 0 then None
        else begin
          Classifier.classify_batch ~stats:t.cls rt.compiled
            ~bindings:rt.bindings ~frames ~n ~fids:arena.Arena.fids
            ~scanned:arena.Arena.scanned ~hits:arena.Arena.hits;
          Some rt
        end
    | _ -> None
  in
  let processed = ref 0 in
  let stop = ref false in
  while (not !stop) && !processed < n do
    let i = !processed in
    let v =
      match pre with
      | Some rt ->
          t.stats.packets_inspected <- t.stats.packets_inspected + 1;
          process_classified t rt point frames.(i) ~fid:arena.Arena.fids.(i)
            ~scanned:arena.Arena.scanned.(i)
      | None -> process_one t point frames.(i)
    in
    verdicts.(i) <- v;
    processed := i + 1;
    on_verdict i v;
    (* a STOP report (or scenario timeout) raised while processing frame i
       must keep frames i+1.. from running, exactly as it would keep their
       scheduled deliveries from running in the unbatched world *)
    if Vw_sim.Engine.stop_requested engine then stop := true
  done;
  (* When STOP cut the batch short, the pre-classification pass has
     already counted the unprocessed tail in the cumulative classifier
     stats; subtract it so batch and single-packet runs report identical
     counters (the linear fold never classifies the tail at all). *)
  (match pre with
  | Some _ when !processed < n ->
      for j = !processed to n - 1 do
        t.cls.Classifier.filters_scanned <-
          t.cls.Classifier.filters_scanned - arena.Arena.scanned.(j);
        if Bytes.get arena.Arena.hits j = '\001' then
          t.cls.Classifier.index_hits <- t.cls.Classifier.index_hits - 1
        else
          t.cls.Classifier.index_misses <- t.cls.Classifier.index_misses - 1
      done
  | _ -> ());
  !processed

let install hst =
  let t =
    {
      hst;
      stats = new_stats ();
      cls = Classifier.new_scan_stats ();
      rt = None;
      report_handler = (fun _ -> ());
      egress_hook = None;
      ingress_hook = None;
      cost = None;
      obs = Rec.null;
      mx = None;
      delayed_inflight = 0;
    }
  in
  t.egress_hook <-
    Some
      (Vw_stack.Host.add_hook hst Vw_stack.Hook.Egress
         ~priority:Vw_stack.Hook.priority_virtualwire ~name:"virtualwire"
         (egress_handler t));
  t.ingress_hook <-
    Some
      (Vw_stack.Host.add_hook hst Vw_stack.Hook.Ingress
         ~priority:Vw_stack.Hook.priority_virtualwire ~name:"virtualwire"
         (ingress_handler t));
  t

let uninstall t =
  (match t.egress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.hst id
  | None -> ());
  (match t.ingress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.hst id
  | None -> ());
  t.egress_hook <- None;
  t.ingress_hook <- None

let reset t = t.rt <- None
let set_cost_model t cm = t.cost <- cm
let cost_model t = t.cost
