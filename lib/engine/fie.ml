let src = Logs.Src.create "vw.fie" ~doc:"Fault Injection/Analysis Engine"

module Log = (val Logs.src_log src : Logs.LOG)
module Tables = Vw_fsl.Tables
module Ast = Vw_fsl.Ast

type report =
  | Stop_report of { nid : int }
  | Error_report of { nid : int; rule : int }

type stats = {
  mutable packets_inspected : int;
  mutable packets_matched : int;
  mutable counter_updates : int;
  mutable terms_evaluated : int;
  mutable conditions_evaluated : int;
  mutable actions_executed : int;
  mutable control_sent : int;
  mutable control_received : int;
  mutable faults_drop : int;
  mutable faults_delay : int;
  mutable faults_reorder : int;
  mutable faults_dup : int;
  mutable faults_modify : int;
  mutable cascade_overflows : int;
}

let new_stats () =
  {
    packets_inspected = 0;
    packets_matched = 0;
    counter_updates = 0;
    terms_evaluated = 0;
    conditions_evaluated = 0;
    actions_executed = 0;
    control_sent = 0;
    control_received = 0;
    faults_drop = 0;
    faults_delay = 0;
    faults_reorder = 0;
    faults_dup = 0;
    faults_modify = 0;
    cascade_overflows = 0;
  }

(* A fault action of this node, precomputed at init for the per-packet
   check. *)
type armed_fault = {
  af_did : int; (* owning condition *)
  af_aid : int;
  af_spec : Tables.fspec;
  af_kind :
    [ `Drop
    | `Delay of Vw_sim.Simtime.t
    | `Reorder of int * int array
    | `Dup
    | `Modify of (int * bytes) option ];
}

type runtime = {
  tables : Tables.t;
  controller_nid : int;
  nid : int;
  counter_values : int array;
  counter_enabled : bool array;
  term_status : bool array;
  cond_status : bool array;
  bindings : bytes option array;
  my_faults : armed_fault list; (* in action-id order *)
  reorder_buffers : (int, Vw_net.Eth.t Queue.t) Hashtbl.t;
  mutable started : bool;
  mutable last_match : Vw_sim.Simtime.t option;
}

type cost_model = {
  cost_base : Vw_sim.Simtime.t;
  cost_per_filter : Vw_sim.Simtime.t;
  cost_per_action : Vw_sim.Simtime.t;
}

type t = {
  hst : Vw_stack.Host.t;
  stats : stats;
  mutable rt : runtime option;
  mutable report_handler : report -> unit;
  mutable egress_hook : Vw_stack.Host.hook_id option;
  mutable ingress_hook : Vw_stack.Host.hook_id option;
  mutable cost : cost_model option;
}

let host t = t.hst
let stats t = t.stats
let initialized t = t.rt <> None
let started t = match t.rt with Some rt -> rt.started | None -> false
let my_nid t = Option.map (fun rt -> rt.nid) t.rt
let set_report_handler t fn = t.report_handler <- fn

let last_match_time t =
  match t.rt with Some rt -> rt.last_match | None -> None

let counter_lookup t name =
  match t.rt with
  | None -> None
  | Some rt -> (
      match Tables.counter_by_name rt.tables name with
      | Some c -> Some (rt, c.Tables.cid)
      | None -> None)

let counter_value t name =
  Option.map (fun (rt, cid) -> rt.counter_values.(cid)) (counter_lookup t name)

let counter_enabled t name =
  Option.map (fun (rt, cid) -> rt.counter_enabled.(cid)) (counter_lookup t name)

let counters t =
  match t.rt with
  | None -> []
  | Some rt ->
      Array.to_list rt.tables.Tables.counters
      |> List.map (fun (c : Tables.counter_entry) ->
             ( c.cname,
               rt.counter_values.(c.cid),
               rt.counter_enabled.(c.cid) ))

let condition_status t did =
  match t.rt with
  | Some rt when did >= 0 && did < Array.length rt.cond_status ->
      Some (rt.cond_status.(did))
  | _ -> None

let now t = Vw_sim.Engine.now (Vw_stack.Host.engine t.hst)

(* --- term & condition evaluation --- *)

let eval_term rt (term : Tables.term_entry) =
  let left = rt.counter_values.(term.left) in
  let right =
    match term.right with
    | Tables.Num n -> n
    | Tables.Cnt cid -> rt.counter_values.(cid)
  in
  match term.op with
  | Ast.Lt -> left < right
  | Ast.Le -> left <= right
  | Ast.Gt -> left > right
  | Ast.Ge -> left >= right
  | Ast.Eq -> left = right
  | Ast.Ne -> left <> right

let rec eval_expr rt = function
  | Tables.C_true -> true
  | Tables.C_term tid -> rt.term_status.(tid)
  | Tables.C_and (a, b) -> eval_expr rt a && eval_expr rt b
  | Tables.C_or (a, b) -> eval_expr rt a || eval_expr rt b
  | Tables.C_not a -> not (eval_expr rt a)

(* --- control-plane sending --- *)

let rec send_control t ~dst_nid msg =
  match t.rt with
  | None -> ()
  | Some rt ->
      if dst_nid = rt.nid then process_control t msg
      else begin
        t.stats.control_sent <- t.stats.control_sent + 1;
        let dst = rt.tables.Tables.nodes.(dst_nid).Tables.nmac in
        let frame =
          Control.to_frame ~src:(Vw_stack.Host.mac t.hst) ~dst msg
        in
        Vw_stack.Host.send_frame t.hst frame
      end

and report t report_value =
  match t.rt with
  | None -> ()
  | Some rt ->
      let msg =
        match report_value with
        | Stop_report { nid } -> Control.Report_stop { nid }
        | Error_report { nid; rule } -> Control.Report_error { nid; rule }
      in
      if rt.nid = rt.controller_nid then t.report_handler report_value
      else send_control t ~dst_nid:rt.controller_nid msg

(* --- action execution --- *)

and execute_action t rt (entry : Tables.action_entry) ~changed =
  t.stats.actions_executed <- t.stats.actions_executed + 1;
  let set_value cid v =
    if rt.counter_values.(cid) <> v then begin
      rt.counter_values.(cid) <- v;
      t.stats.counter_updates <- t.stats.counter_updates + 1;
      if not (List.mem cid !changed) then changed := cid :: !changed
    end
  in
  match entry.act with
  | Tables.A_assign (cid, v) ->
      rt.counter_enabled.(cid) <- true;
      set_value cid v
  | Tables.A_enable cid -> rt.counter_enabled.(cid) <- true
  | Tables.A_disable cid -> rt.counter_enabled.(cid) <- false
  | Tables.A_incr (cid, v) -> set_value cid (rt.counter_values.(cid) + v)
  | Tables.A_decr (cid, v) -> set_value cid (rt.counter_values.(cid) - v)
  | Tables.A_reset cid -> set_value cid 0
  | Tables.A_set_curtime cid ->
      set_value cid (int_of_float (Vw_sim.Simtime.to_ms (now t)))
  | Tables.A_elapsed_time cid ->
      set_value cid
        (int_of_float (Vw_sim.Simtime.to_ms (now t)) - rt.counter_values.(cid))
  | Tables.A_bind_var (vid, value) ->
      rt.bindings.(vid) <- Some value;
      Array.iter
        (fun (n : Tables.node_entry) ->
          if n.nid <> rt.nid then
            send_control t ~dst_nid:n.nid (Control.Var_bind { vid; value }))
        rt.tables.Tables.nodes
  | Tables.A_fail nid ->
      if nid = rt.nid then Vw_stack.Host.fail t.hst
  | Tables.A_stop -> report t (Stop_report { nid = rt.nid })
  | Tables.A_flag_error rule -> report t (Error_report { nid = rt.nid; rule })
  | Tables.A_drop _ | Tables.A_delay _ | Tables.A_reorder _ | Tables.A_dup _
  | Tables.A_modify _ ->
      (* Faults are level-armed through their condition's status; nothing to
         do at the edge. *)
      ()

(* --- the cascade (Figure 3 / Figure 4b) ---

   Seeds: counters whose values changed (locally or via control message)
   and/or terms whose status was pushed from a remote evaluator. Each round
   re-evaluates affected local terms, then affected local conditions from a
   snapshot, fires rising edges, and feeds resulting counter changes into
   the next round. *)

and cascade t rt ~changed_counters ~changed_terms =
  let max_rounds = 100 in
  let round = ref 0 in
  let counters = ref changed_counters in
  let ext_terms = ref changed_terms in
  let continue = ref true in
  while !continue do
    incr round;
    if !round > max_rounds then begin
      t.stats.cascade_overflows <- t.stats.cascade_overflows + 1;
      Log.err (fun m ->
          m "%s: rule cascade did not converge" (Vw_stack.Host.name t.hst));
      report t (Error_report { nid = rt.nid; rule = -1 });
      continue := false
    end
    else begin
      (* 1. ship counter updates to remote term evaluators *)
      List.iter
        (fun cid ->
          let c = rt.tables.Tables.counters.(cid) in
          if c.Tables.owner = rt.nid then
            List.iter
              (fun nid ->
                send_control t ~dst_nid:nid
                  (Control.Counter_update
                     { cid; value = rt.counter_values.(cid) }))
              c.Tables.value_subscribers)
        !counters;
      (* 2. re-evaluate local terms over the changed counters *)
      let affected_tids =
        List.sort_uniq compare
          (List.concat_map
             (fun cid ->
               rt.tables.Tables.counters.(cid).Tables.affected_terms)
             !counters)
        |> List.filter (fun tid ->
               rt.tables.Tables.terms.(tid).Tables.eval_node = rt.nid)
      in
      let flipped_tids =
        List.filter
          (fun tid ->
            let term = rt.tables.Tables.terms.(tid) in
            t.stats.terms_evaluated <- t.stats.terms_evaluated + 1;
            let status = eval_term rt term in
            if status <> rt.term_status.(tid) then begin
              rt.term_status.(tid) <- status;
              List.iter
                (fun nid ->
                  send_control t ~dst_nid:nid
                    (Control.Term_status { tid; status }))
                term.Tables.status_subscribers;
              true
            end
            else false)
          affected_tids
      in
      let flipped_tids = List.sort_uniq compare (flipped_tids @ !ext_terms) in
      ext_terms := [];
      (* 3. snapshot-evaluate affected conditions, collect rising edges *)
      let affected_dids =
        List.sort_uniq compare
          (List.concat_map
             (fun tid -> rt.tables.Tables.terms.(tid).Tables.in_conditions)
             flipped_tids)
        |> List.filter (fun did ->
               List.mem rt.nid rt.tables.Tables.conds.(did).Tables.eval_nodes)
      in
      let risen =
        List.filter
          (fun did ->
            let cond = rt.tables.Tables.conds.(did) in
            t.stats.conditions_evaluated <- t.stats.conditions_evaluated + 1;
            let status = eval_expr rt cond.Tables.expr in
            let rose = status && not rt.cond_status.(did) in
            rt.cond_status.(did) <- status;
            rose)
          affected_dids
      in
      (* 4. fire the risen conditions' local actions *)
      let changed = ref [] in
      List.iter
        (fun did ->
          List.iter
            (fun (nid, aid) ->
              if nid = rt.nid then
                execute_action t rt rt.tables.Tables.actions.(aid) ~changed)
            rt.tables.Tables.conds.(did).Tables.cond_actions)
        risen;
      counters := List.rev !changed;
      if !counters = [] then continue := false
    end
  done

(* --- control-plane receive --- *)

and process_control t msg =
  t.stats.control_received <- t.stats.control_received + 1;
  match (msg, t.rt) with
  | Control.Init { controller_nid; tables }, _ -> (
      match Vw_fsl.Tables_codec.of_bytes tables with
      | Error e ->
          Log.err (fun m -> m "%s: bad INIT: %s" (Vw_stack.Host.name t.hst) e)
      | Ok tables -> (
          match init_local t ~controller_nid tables with
          | Ok () -> ()
          | Error e ->
              Log.info (fun m ->
                  m "%s: not participating: %s" (Vw_stack.Host.name t.hst) e)))
  | Control.Start, Some rt -> if not rt.started then start_local t
  | Control.Start, None -> ()
  | Control.Counter_update { cid; value }, Some rt ->
      if cid < Array.length rt.counter_values then begin
        if rt.counter_values.(cid) <> value then begin
          rt.counter_values.(cid) <- value;
          cascade t rt ~changed_counters:[ cid ] ~changed_terms:[]
        end
      end
  | Control.Term_status { tid; status }, Some rt ->
      if tid < Array.length rt.term_status then begin
        if rt.term_status.(tid) <> status then begin
          rt.term_status.(tid) <- status;
          cascade t rt ~changed_counters:[] ~changed_terms:[ tid ]
        end
      end
  | Control.Var_bind { vid; value }, Some rt ->
      if vid < Array.length rt.bindings then rt.bindings.(vid) <- Some value
  | Control.Report_stop { nid }, Some _ -> t.report_handler (Stop_report { nid })
  | Control.Report_error { nid; rule }, Some _ ->
      t.report_handler (Error_report { nid; rule })
  | (Control.Counter_update _ | Control.Term_status _ | Control.Var_bind _
    | Control.Report_stop _ | Control.Report_error _ ), None ->
      ()

(* --- initialization --- *)

and init_local t ~controller_nid tables =
  match Tables.node_by_mac tables (Vw_stack.Host.mac t.hst) with
  | None -> Error "host MAC not in the node table"
  | Some node ->
      let nid = node.Tables.nid in
      let my_faults =
        Array.to_list tables.Tables.conds
        |> List.concat_map (fun (cond : Tables.cond_entry) ->
               List.filter_map
                 (fun (anid, aid) ->
                   if anid <> nid then None
                   else
                     let entry = tables.Tables.actions.(aid) in
                     let kind =
                       match entry.Tables.act with
                       | Tables.A_drop _ -> Some `Drop
                       | Tables.A_delay (_, d) -> Some (`Delay d)
                       | Tables.A_reorder (_, n, order) ->
                           Some (`Reorder (n, order))
                       | Tables.A_dup _ -> Some `Dup
                       | Tables.A_modify (_, pat) -> Some (`Modify pat)
                       | Tables.A_assign _ | Tables.A_enable _
                       | Tables.A_disable _ | Tables.A_incr _ | Tables.A_decr _
                       | Tables.A_reset _ | Tables.A_set_curtime _
                       | Tables.A_elapsed_time _ | Tables.A_fail _
                       | Tables.A_stop | Tables.A_flag_error _
                       | Tables.A_bind_var _ ->
                           None
                     in
                     let spec =
                       match entry.Tables.act with
                       | Tables.A_drop s
                       | Tables.A_delay (s, _)
                       | Tables.A_reorder (s, _, _)
                       | Tables.A_dup s
                       | Tables.A_modify (s, _) ->
                           Some s
                       | _ -> None
                     in
                     match (kind, spec) with
                     | Some af_kind, Some af_spec ->
                         Some
                           { af_did = cond.Tables.did; af_aid = aid; af_spec; af_kind }
                     | _ -> None)
                 cond.Tables.cond_actions)
        |> List.sort (fun a b -> compare a.af_aid b.af_aid)
      in
      let rt =
        {
          tables;
          controller_nid;
          nid;
          counter_values = Array.make (Array.length tables.Tables.counters) 0;
          counter_enabled =
            Array.make (Array.length tables.Tables.counters) false;
          term_status = Array.make (Array.length tables.Tables.terms) false;
          cond_status = Array.make (Array.length tables.Tables.conds) false;
          bindings = Array.make (Array.length tables.Tables.vars) None;
          my_faults;
          reorder_buffers = Hashtbl.create 4;
          started = false;
          last_match = None;
        }
      in
      (* Initial term/condition statuses from the all-zero counter state —
         every node computes the same snapshot, so no start-up burst of
         control messages is needed. *)
      Array.iteri
        (fun tid term -> rt.term_status.(tid) <- eval_term rt term)
        tables.Tables.terms;
      Array.iteri
        (fun did (cond : Tables.cond_entry) ->
          rt.cond_status.(did) <- eval_expr rt cond.Tables.expr)
        tables.Tables.conds;
      t.rt <- Some rt;
      Ok ()

and start_local t =
  match t.rt with
  | None -> ()
  | Some rt ->
      rt.started <- true;
      (* Fire the conditions that are true at scenario start (the TRUE
         rules, and any degenerate always-true conditions). *)
      let changed = ref [] in
      Array.iter
        (fun (cond : Tables.cond_entry) ->
          if
            rt.cond_status.(cond.Tables.did)
            && List.mem rt.nid cond.Tables.eval_nodes
          then
            List.iter
              (fun (nid, aid) ->
                if nid = rt.nid then
                  execute_action t rt rt.tables.Tables.actions.(aid) ~changed)
              cond.Tables.cond_actions)
        rt.tables.Tables.conds;
      cascade t rt ~changed_counters:(List.rev !changed) ~changed_terms:[]

(* --- the per-packet path --- *)

let counter_observes rt (c : Tables.counter_entry) ~fid ~src ~dst ~point =
  match c.Tables.ckind with
  | Tables.Local -> false
  | Tables.Event { e_fid; e_from; e_to; e_dir } ->
      e_fid = fid
      && (match (e_dir, point) with
         | Ast.Send, Vw_stack.Hook.Egress -> e_from = rt.nid
         | Ast.Recv, Vw_stack.Hook.Ingress -> e_to = rt.nid
         | (Ast.Send | Ast.Recv), (Vw_stack.Hook.Egress | Vw_stack.Hook.Ingress)
           ->
             false)
      && Vw_net.Mac.equal src rt.tables.Tables.nodes.(e_from).Tables.nmac
      && Vw_net.Mac.equal dst rt.tables.Tables.nodes.(e_to).Tables.nmac

let fault_applies rt (af : armed_fault) ~fid ~src ~dst ~point =
  rt.cond_status.(af.af_did)
  && af.af_spec.Tables.fs_fid = fid
  && (match (af.af_spec.Tables.fs_dir, point) with
     | Ast.Send, Vw_stack.Hook.Egress -> af.af_spec.Tables.fs_from = rt.nid
     | Ast.Recv, Vw_stack.Hook.Ingress -> af.af_spec.Tables.fs_to = rt.nid
     | (Ast.Send | Ast.Recv), (Vw_stack.Hook.Egress | Vw_stack.Hook.Ingress) ->
         false)
  && Vw_net.Mac.equal src
       rt.tables.Tables.nodes.(af.af_spec.Tables.fs_from).Tables.nmac
  && Vw_net.Mac.equal dst
       rt.tables.Tables.nodes.(af.af_spec.Tables.fs_to).Tables.nmac

let reinject t point frame =
  Vw_stack.Host.reinject t.hst point
    ~from_priority:Vw_stack.Hook.priority_virtualwire frame

let apply_fault t rt point (frame : Vw_net.Eth.t) (af : armed_fault) =
  match af.af_kind with
  | `Drop ->
      t.stats.faults_drop <- t.stats.faults_drop + 1;
      Vw_stack.Hook.Drop
  | `Delay duration ->
      t.stats.faults_delay <- t.stats.faults_delay + 1;
      ignore
        (Vw_stack.Host.set_timer t.hst ~delay:duration (fun () ->
             reinject t point frame));
      Vw_stack.Hook.Stolen
  | `Reorder (n, order) ->
      t.stats.faults_reorder <- t.stats.faults_reorder + 1;
      let buffer =
        match Hashtbl.find_opt rt.reorder_buffers af.af_aid with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace rt.reorder_buffers af.af_aid q;
            q
      in
      Queue.add frame buffer;
      if Queue.length buffer >= n then begin
        let frames = Array.of_seq (Queue.to_seq buffer) in
        Queue.clear buffer;
        (* release in the user's permutation, as one burst *)
        Array.iter (fun idx -> reinject t point frames.(idx - 1)) order
      end;
      Vw_stack.Hook.Stolen
  | `Dup ->
      t.stats.faults_dup <- t.stats.faults_dup + 1;
      reinject t point frame;
      Vw_stack.Hook.Accept frame
  | `Modify pat ->
      t.stats.faults_modify <- t.stats.faults_modify + 1;
      let data = Vw_net.Eth.to_bytes frame in
      (match pat with
      | Some (offset, b) ->
          let len = min (Bytes.length b) (max 0 (Bytes.length data - offset)) in
          if len > 0 && offset >= 0 then Bytes.blit b 0 data offset len
      | None ->
          (* Random perturbation, sparing the Ethernet header so the frame
             still reaches its destination and fails there (checksum). *)
          let prng = Vw_sim.Engine.prng (Vw_stack.Host.engine t.hst) in
          let span = Bytes.length data - Vw_net.Eth.header_size in
          if span > 0 then
            for _ = 1 to 3 do
              let pos = Vw_net.Eth.header_size + Vw_util.Prng.int prng span in
              Bytes.set data pos
                (Char.chr
                   (Char.code (Bytes.get data pos)
                   lxor (1 + Vw_util.Prng.int prng 255)))
            done);
      Vw_stack.Hook.Accept (Vw_net.Eth.of_bytes data)

(* Withhold an accepted packet for the configured processing cost before it
   continues through the rest of the chain. *)
let charge_cost t point ~scanned ~actions verdict =
  match t.cost with
  | None -> verdict
  | Some cm ->
      let cost =
        Vw_sim.Simtime.(
          cm.cost_base
          + (scanned * cm.cost_per_filter)
          + (actions * cm.cost_per_action))
      in
      if cost <= 0 then verdict
      else begin
        match verdict with
        | Vw_stack.Hook.Accept frame ->
            ignore
              (Vw_sim.Engine.schedule_after
                 (Vw_stack.Host.engine t.hst)
                 ~delay:cost
                 (fun () -> reinject t point frame));
            Vw_stack.Hook.Stolen
        | (Vw_stack.Hook.Drop | Vw_stack.Hook.Stolen) as v -> v
      end

let handle_packet t point (frame : Vw_net.Eth.t) =
  t.stats.packets_inspected <- t.stats.packets_inspected + 1;
  match t.rt with
  | None -> Vw_stack.Hook.Accept frame
  | Some rt when not rt.started -> Vw_stack.Hook.Accept frame
  | Some rt -> (
      let actions_before = t.stats.actions_executed in
      let data = Vw_net.Eth.to_bytes frame in
      match Classifier.classify rt.tables ~bindings:rt.bindings data with
      | None ->
          charge_cost t point
            ~scanned:(Array.length rt.tables.Tables.filters)
            ~actions:0
            (Vw_stack.Hook.Accept frame)
      | Some fid ->
          t.stats.packets_matched <- t.stats.packets_matched + 1;
          rt.last_match <- Some (now t);
          (* 1. counter updates *)
          let changed = ref [] in
          Array.iter
            (fun (c : Tables.counter_entry) ->
              if
                rt.counter_enabled.(c.Tables.cid)
                && counter_observes rt c ~fid ~src:frame.src ~dst:frame.dst
                     ~point
              then begin
                rt.counter_values.(c.Tables.cid) <-
                  rt.counter_values.(c.Tables.cid) + 1;
                t.stats.counter_updates <- t.stats.counter_updates + 1;
                changed := c.Tables.cid :: !changed
              end)
            rt.tables.Tables.counters;
          (* 2. cascade *)
          if !changed <> [] then
            cascade t rt ~changed_counters:(List.rev !changed)
              ~changed_terms:[];
          (* 3. apply the first armed fault matching this packet *)
          let fault =
            List.find_opt
              (fun af ->
                fault_applies rt af ~fid ~src:frame.src ~dst:frame.dst ~point)
              rt.my_faults
          in
          let verdict =
            match fault with
            | Some af -> apply_fault t rt point frame af
            | None -> Vw_stack.Hook.Accept frame
          in
          charge_cost t point ~scanned:(fid + 1)
            ~actions:(t.stats.actions_executed - actions_before)
            verdict)

let ingress_handler t (frame : Vw_net.Eth.t) =
  if frame.ethertype = Vw_net.Eth.ethertype_vw_control then begin
    (match Control.of_payload frame.payload with
    | Ok msg -> process_control t msg
    | Error e ->
        Log.err (fun m ->
            m "%s: undecodable control frame: %s" (Vw_stack.Host.name t.hst) e));
    Vw_stack.Hook.Stolen
  end
  else handle_packet t Vw_stack.Hook.Ingress frame

let egress_handler t (frame : Vw_net.Eth.t) =
  if frame.ethertype = Vw_net.Eth.ethertype_vw_control then
    (* our own control traffic is not subject to classification *)
    Vw_stack.Hook.Accept frame
  else handle_packet t Vw_stack.Hook.Egress frame

let install hst =
  let t =
    {
      hst;
      stats = new_stats ();
      rt = None;
      report_handler = (fun _ -> ());
      egress_hook = None;
      ingress_hook = None;
      cost = None;
    }
  in
  t.egress_hook <-
    Some
      (Vw_stack.Host.add_hook hst Vw_stack.Hook.Egress
         ~priority:Vw_stack.Hook.priority_virtualwire ~name:"virtualwire"
         (egress_handler t));
  t.ingress_hook <-
    Some
      (Vw_stack.Host.add_hook hst Vw_stack.Hook.Ingress
         ~priority:Vw_stack.Hook.priority_virtualwire ~name:"virtualwire"
         (ingress_handler t));
  t

let uninstall t =
  (match t.egress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.hst id
  | None -> ());
  (match t.ingress_hook with
  | Some id -> Vw_stack.Host.remove_hook t.hst id
  | None -> ());
  t.egress_hook <- None;
  t.ingress_hook <- None

let reset t = t.rt <- None
let set_cost_model t cm = t.cost <- cm
let cost_model t = t.cost
