type t = {
  fie : Fie.t;
  mutable tables : Vw_fsl.Tables.t option;
  mutable stop_received : bool;
  mutable errors : (int * int) list; (* newest first *)
  mutable stop_cb : unit -> unit;
  mutable error_cb : int -> int -> unit;
}

let create fie =
  let t =
    {
      fie;
      tables = None;
      stop_received = false;
      errors = [];
      stop_cb = (fun () -> ());
      error_cb = (fun _ _ -> ());
    }
  in
  Fie.set_report_handler fie (function
    | Fie.Stop_report _ ->
        if not t.stop_received then begin
          t.stop_received <- true;
          t.stop_cb ()
        end
    | Fie.Error_report { nid; rule } ->
        t.errors <- (nid, rule) :: t.errors;
        t.error_cb nid rule);
  t

let deploy t tables =
  let my_mac = Vw_stack.Host.mac (Fie.host t.fie) in
  match Vw_fsl.Tables.node_by_mac tables my_mac with
  | None -> Error "control node is not in the script's node table"
  | Some node -> (
      let my = node.Vw_fsl.Tables.nid in
      match Fie.init_local t.fie ~controller_nid:my tables with
      | Error e -> Error e
      | Ok () ->
          t.tables <- Some tables;
          let payload = Vw_fsl.Tables_codec.to_bytes tables in
          Array.iter
            (fun (n : Vw_fsl.Tables.node_entry) ->
              if n.nid <> my then
                Fie.send_control t.fie ~dst_nid:n.nid
                  (Control.Init { controller_nid = my; tables = payload }))
            tables.Vw_fsl.Tables.nodes;
          Ok ())

let start t =
  match (t.tables, Fie.my_nid t.fie) with
  | Some tables, Some my ->
      Array.iter
        (fun (n : Vw_fsl.Tables.node_entry) ->
          if n.nid <> my then Fie.send_control t.fie ~dst_nid:n.nid Control.Start)
        tables.Vw_fsl.Tables.nodes;
      Fie.start_local t.fie
  | _ -> ()

let nid t = Fie.my_nid t.fie
let stop_received t = t.stop_received
let errors t = List.rev t.errors
let on_stop t cb = t.stop_cb <- cb
let on_error t cb = t.error_cb <- cb
