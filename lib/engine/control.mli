(** The control-plane protocol of Section 5.2.

    "The distributed evaluation and execution in VirtualWire is supported by
    a control plane protocol that coordinates among the FIEs across multiple
    hosts. The control plane messages are implemented as payloads of raw
    Ethernet frames."

    Message kinds:
    - [Init]: the control node ships the serialized six tables (plus its own
      node id, so engines know where to send reports);
    - [Start]: begin the scenario (fires the TRUE rules);
    - [Counter_update]: a counter's authoritative value changed and a remote
      node evaluates a term over it;
    - [Term_status]: a term's truth value changed and a remote node
      evaluates a condition over it;
    - [Var_bind]: a BIND_VAR action ran; filter variables are global, so
      bindings are broadcast;
    - [Report_stop] / [Report_error]: a node executed STOP / FLAG_ERROR;
      sent to the control node. *)

type msg =
  | Init of { controller_nid : int; tables : bytes }
  | Start
  | Counter_update of { cid : int; value : int }
  | Term_status of { tid : int; status : bool }
  | Var_bind of { vid : int; value : bytes }
  | Report_stop of { nid : int }
  | Report_error of { nid : int; rule : int }

val to_payload : msg -> bytes
val of_payload : bytes -> (msg, string) result

val to_frame : src:Vw_net.Mac.t -> dst:Vw_net.Mac.t -> msg -> Vw_net.Eth.t
(** Wraps in an Ethernet frame with ethertype 0x88B6. *)

val pp : Format.formatter -> msg -> unit
