(** The packet classifier: match frames against the filter table.

    Filters are tried in declaration order and the first match wins, as in
    the paper ("The priority of the filter rules is in descending order of
    occurrence. If a match is found with one rule then there is no need to
    match the subsequent rules."). A tuple with an unbound variable never
    matches; a bound variable behaves as a literal pattern (see DESIGN.md).

    The paper's implementation "searches linearly through the packet type
    definitions" — the cost Figure 8 measures. {!classify_linear} keeps
    that scan as the executable reference; {!classify} and
    {!classify_frame} dispatch through the precompiled
    {!Vw_fsl.Tables.classification_index} instead, scanning only the
    filters that could possibly match. The two are semantically identical
    (property-tested in [test_engine.ml]). *)

val tuple_matches :
  Vw_fsl.Tables.tuple -> bindings:bytes option array -> bytes -> bool

val filter_matches :
  Vw_fsl.Tables.filter_entry -> bindings:bytes option array -> bytes -> bool

val tuple_matches_frame :
  Vw_fsl.Tables.tuple -> bindings:bytes option array -> Vw_net.Eth.t -> bool
(** Zero-copy variant: offsets address the serialized layout but are read
    through {!Vw_net.Eth.masked_field_equal}. *)

val filter_matches_frame :
  Vw_fsl.Tables.filter_entry ->
  bindings:bytes option array ->
  Vw_net.Eth.t ->
  bool

val classify_linear :
  Vw_fsl.Tables.t -> bindings:bytes option array -> bytes -> int option
(** The naive full scan — the reference the indexed paths must agree with,
    and the baseline the bench compares against. *)

type scan_stats = {
  mutable filters_scanned : int;  (** candidate filters actually tested *)
  mutable index_hits : int;  (** packets whose field value had a bucket *)
  mutable index_misses : int;
      (** packets outside every bucket (fallback-only scan) *)
}
(** Cumulative classification counters; pass one record across calls and
    read deltas for per-packet costs. *)

val new_scan_stats : unit -> scan_stats

val classify :
  ?stats:scan_stats ->
  Vw_fsl.Tables.t ->
  bindings:bytes option array ->
  bytes ->
  int option
(** [classify tables ~bindings frame_bytes] is the first matching filter
    id, dispatching through the classification index. *)

val classify_frame :
  ?stats:scan_stats ->
  Vw_fsl.Tables.t ->
  bindings:bytes option array ->
  Vw_net.Eth.t ->
  int option
(** Indexed {e and} zero-copy: classifies an [Eth.t] without serializing
    it. *)

val classify_frame_c :
  ?stats:scan_stats ->
  Vw_fsl.Tables.Compiled.t ->
  bindings:bytes option array ->
  Vw_net.Eth.t ->
  int option
(** {!classify_frame} over the compiled SoA filter table: same index
    dispatch and first-match-wins merge scan, but tuples are flat int
    arrays over a shared byte pool — no list traversal, no per-tuple
    variant dispatch. This is the engine's per-packet entry point;
    property-tested equal to {!classify_frame} and {!classify_linear}. *)

val classify_batch :
  ?stats:scan_stats ->
  Vw_fsl.Tables.Compiled.t ->
  bindings:bytes option array ->
  frames:Vw_net.Eth.t array ->
  n:int ->
  fids:int array ->
  scanned:int array ->
  hits:Bytes.t ->
  unit
(** Classify [frames.(0 .. n-1)] in one pass (the arrays are an
    {!Arena.t}'s). Per frame [i]: [fids.(i)] gets the first matching fid
    or −1, [scanned.(i)] the filters tested, [hits.(i)] whether the
    discriminating field selected a bucket ('\001') or fell through to
    the fallback scan ('\000'). The totals added to [stats] equal a fold
    of {!classify_frame_c}; the per-frame breakdown lets a caller that
    stops mid-batch subtract the unprocessed tail and keep batch and
    single-packet stats identical. Only sound when [bindings] cannot
    change mid-batch (no vars, or no BIND_VAR reachable). *)
