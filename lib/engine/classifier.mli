(** The packet classifier: match raw frame bytes against the filter table.

    Filters are tried in declaration order and the first match wins, as in
    the paper ("The priority of the filter rules is in descending order of
    occurrence. If a match is found with one rule then there is no need to
    match the subsequent rules."). A tuple with an unbound variable never
    matches; a bound variable behaves as a literal pattern (see DESIGN.md).

    The linear scan is intentional — Figure 8 measures exactly this cost
    ("the current VirtualWire implementation searches linearly through the
    packet type definitions"). *)

val tuple_matches :
  Vw_fsl.Tables.tuple -> bindings:bytes option array -> bytes -> bool

val filter_matches :
  Vw_fsl.Tables.filter_entry -> bindings:bytes option array -> bytes -> bool

val classify :
  Vw_fsl.Tables.t -> bindings:bytes option array -> bytes -> int option
(** [classify tables ~bindings frame_bytes] is the first matching filter id. *)
