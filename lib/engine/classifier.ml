open Vw_fsl.Tables

let tuple_matches (tuple : tuple) ~bindings data =
  match tuple.t_pat with
  | Bytes_pattern pattern ->
      Vw_util.Hexutil.masked_equal data ~pos:tuple.t_offset ~pattern
        ~mask:tuple.t_mask
  | Var_pattern vid -> (
      match bindings.(vid) with
      | None -> false
      | Some pattern ->
          Vw_util.Hexutil.masked_equal data ~pos:tuple.t_offset ~pattern
            ~mask:tuple.t_mask)

let filter_matches (f : filter_entry) ~bindings data =
  List.for_all (fun tuple -> tuple_matches tuple ~bindings data) f.f_tuples

let classify (t : t) ~bindings data =
  let n = Array.length t.filters in
  let rec go i =
    if i = n then None
    else if filter_matches t.filters.(i) ~bindings data then Some i
    else go (i + 1)
  in
  go 0
