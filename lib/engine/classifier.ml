open Vw_fsl.Tables

(* --- matching over raw frame bytes --- *)

let tuple_matches (tuple : tuple) ~bindings data =
  match tuple.t_pat with
  | Bytes_pattern pattern ->
      Vw_util.Hexutil.masked_equal data ~pos:tuple.t_offset ~pattern
        ~mask:tuple.t_mask
  | Var_pattern vid -> (
      match bindings.(vid) with
      | None -> false
      | Some pattern ->
          Vw_util.Hexutil.masked_equal data ~pos:tuple.t_offset ~pattern
            ~mask:tuple.t_mask)

let filter_matches (f : filter_entry) ~bindings data =
  List.for_all (fun tuple -> tuple_matches tuple ~bindings data) f.f_tuples

let classify_linear (t : t) ~bindings data =
  let n = Array.length t.filters in
  let rec go i =
    if i = n then None
    else if filter_matches t.filters.(i) ~bindings data then Some i
    else go (i + 1)
  in
  go 0

(* --- matching over an Eth.t view, without serializing --- *)

let tuple_matches_frame (tuple : tuple) ~bindings (frame : Vw_net.Eth.t) =
  match tuple.t_pat with
  | Bytes_pattern pattern ->
      Vw_net.Eth.masked_field_equal frame ~pos:tuple.t_offset ~pattern
        ~mask:tuple.t_mask
  | Var_pattern vid -> (
      match bindings.(vid) with
      | None -> false
      | Some pattern ->
          Vw_net.Eth.masked_field_equal frame ~pos:tuple.t_offset ~pattern
            ~mask:tuple.t_mask)

let filter_matches_frame (f : filter_entry) ~bindings frame =
  List.for_all (fun tuple -> tuple_matches_frame tuple ~bindings frame) f.f_tuples

(* --- indexed classification ---

   One read of the discriminating field selects a bucket; only that bucket
   and the fallback filters (those that do not constrain the field) are
   scanned, merged in ascending fid order so first-match-wins semantics are
   exactly the linear scan's. *)

type scan_stats = {
  mutable filters_scanned : int;
  mutable index_hits : int;
  mutable index_misses : int;
}

let new_scan_stats () = { filters_scanned = 0; index_hits = 0; index_misses = 0 }

let empty_bucket : int array = [||]

(* merge-scan [bucket] and [fallback] (both fid-ascending) in fid order *)
let merge_scan ~stats ~test bucket fallback =
  let nb = Array.length bucket and nf = Array.length fallback in
  let rec go bi fi =
    let from_bucket =
      bi < nb && (fi >= nf || Array.unsafe_get bucket bi < Array.unsafe_get fallback fi)
    in
    if from_bucket then begin
      let fid = Array.unsafe_get bucket bi in
      (match stats with
      | Some s -> s.filters_scanned <- s.filters_scanned + 1
      | None -> ());
      if test fid then Some fid else go (bi + 1) fi
    end
    else if fi < nf then begin
      let fid = Array.unsafe_get fallback fi in
      (match stats with
      | Some s -> s.filters_scanned <- s.filters_scanned + 1
      | None -> ());
      if test fid then Some fid else go bi (fi + 1)
    end
    else None
  in
  go 0 0

let lookup_bucket ~stats (ci : classification_index) key_opt =
  match key_opt with
  | Some key -> (
      match Hashtbl.find_opt ci.ci_buckets key with
      | Some fids ->
          (match stats with
          | Some s -> s.index_hits <- s.index_hits + 1
          | None -> ());
          fids
      | None ->
          (match stats with
          | Some s -> s.index_misses <- s.index_misses + 1
          | None -> ());
          empty_bucket)
  | None ->
      (match stats with
      | Some s -> s.index_misses <- s.index_misses + 1
      | None -> ());
      empty_bucket

let classify ?stats (t : t) ~bindings data =
  let ci = t.cindex in
  let key =
    if ci.ci_offset >= 0 && ci.ci_offset + ci.ci_len <= Bytes.length data then
      Some (Vw_util.Hexutil.to_int_be data ~pos:ci.ci_offset ~len:ci.ci_len)
    else None
  in
  let bucket = lookup_bucket ~stats ci key in
  merge_scan ~stats
    ~test:(fun fid -> filter_matches t.filters.(fid) ~bindings data)
    bucket ci.ci_fallback

let classify_frame ?stats (t : t) ~bindings (frame : Vw_net.Eth.t) =
  let ci = t.cindex in
  let key =
    if ci.ci_offset >= 0 && ci.ci_offset + ci.ci_len <= Vw_net.Eth.size frame
    then Some (Vw_net.Eth.read_int_be frame ~pos:ci.ci_offset ~len:ci.ci_len)
    else None
  in
  let bucket = lookup_bucket ~stats ci key in
  merge_scan ~stats
    ~test:(fun fid -> filter_matches_frame t.filters.(fid) ~bindings frame)
    bucket ci.ci_fallback

(* --- matching over the compiled (SoA) filter table --- *)

module C = Vw_fsl.Tables.Compiled

let tuple_matches_c (c : C.t) ti ~bindings (frame : Vw_net.Eth.t) =
  let pat = c.C.tu_pat.(ti) in
  if pat >= 0 then
    Vw_net.Eth.field_matches frame ~pos:c.C.tu_offset.(ti) ~pat:c.C.pool
      ~pat_off:pat ~pat_len:c.C.tu_plen.(ti) ~mask:c.C.pool
      ~mask_off:(max 0 c.C.tu_mask.(ti))
      ~mask_len:c.C.tu_mlen.(ti)
  else
    match bindings.(-pat - 1) with
    | None -> false
    | Some pattern ->
        Vw_net.Eth.field_matches frame ~pos:c.C.tu_offset.(ti) ~pat:pattern
          ~pat_off:0 ~pat_len:(Bytes.length pattern) ~mask:c.C.pool
          ~mask_off:(max 0 c.C.tu_mask.(ti))
          ~mask_len:c.C.tu_mlen.(ti)

let filter_matches_c (c : C.t) fid ~bindings frame =
  let stop = c.C.f_start.(fid + 1) in
  let rec go ti =
    ti = stop || (tuple_matches_c c ti ~bindings frame && go (ti + 1))
  in
  go c.C.f_start.(fid)

let classify_frame_c ?stats (c : C.t) ~bindings (frame : Vw_net.Eth.t) =
  let key =
    if c.C.ci_offset >= 0 && c.C.ci_offset + c.C.ci_len <= Vw_net.Eth.size frame
    then Some (Vw_net.Eth.read_int_be frame ~pos:c.C.ci_offset ~len:c.C.ci_len)
    else None
  in
  let bucket =
    match key with
    | Some key -> (
        match Hashtbl.find_opt c.C.ci_buckets key with
        | Some fids ->
            (match stats with
            | Some s -> s.index_hits <- s.index_hits + 1
            | None -> ());
            fids
        | None ->
            (match stats with
            | Some s -> s.index_misses <- s.index_misses + 1
            | None -> ());
            empty_bucket)
    | None ->
        (match stats with
        | Some s -> s.index_misses <- s.index_misses + 1
        | None -> ());
        empty_bucket
  in
  merge_scan ~stats
    ~test:(fun fid -> filter_matches_c c fid ~bindings frame)
    bucket c.C.ci_fallback

(* Classify a whole batch in one pass, recording the per-frame match
   ([Arena.no_match] for none), scan count and index hit/miss so a caller
   interrupted mid-batch (STOP) can reconcile the cumulative stats down to
   exactly the frames it actually processed. Totals added to [stats] equal
   the sum of per-frame [classify_frame_c] calls by construction. *)
let classify_batch ?stats (c : C.t) ~bindings ~frames ~n ~fids ~scanned ~hits =
  let ls = new_scan_stats () in
  for i = 0 to n - 1 do
    let scanned_before = ls.filters_scanned in
    let hits_before = ls.index_hits in
    let r = classify_frame_c ~stats:ls c ~bindings frames.(i) in
    fids.(i) <- (match r with Some fid -> fid | None -> -1);
    scanned.(i) <- ls.filters_scanned - scanned_before;
    Bytes.set hits i (if ls.index_hits > hits_before then '\001' else '\000')
  done;
  match stats with
  | Some s ->
      s.filters_scanned <- s.filters_scanned + ls.filters_scanned;
      s.index_hits <- s.index_hits + ls.index_hits;
      s.index_misses <- s.index_misses + ls.index_misses
  | None -> ()
