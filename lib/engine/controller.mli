(** The programming front-end's runtime half (Section 5.1).

    The control node compiles the script (see {!Vw_fsl.Compile}), then this
    module ships the six tables to every node as INIT control frames,
    broadcasts START, and collects STOP/FLAG_ERROR reports. It drives its
    own co-located engine directly (loopback frames do not exist on a real
    LAN either). *)

type t

val create : Fie.t -> t
(** Attach to the control node's engine; registers the report handler. *)

val deploy : t -> Vw_fsl.Tables.t -> (unit, string) result
(** Initialize the local engine and send INIT to every other node in the
    table. Errors if this host is not in the node table. *)

val start : t -> unit
(** Fire START everywhere (locally first). *)

val nid : t -> int option
val stop_received : t -> bool

val errors : t -> (int * int) list
(** (node id, rule index) for each FLAG_ERROR received, oldest first.
    Rule index -1 denotes an engine-internal error (cascade overflow). *)

val on_stop : t -> (unit -> unit) -> unit
(** Callback when the first STOP report arrives (e.g. halt the simulation). *)

val on_error : t -> (int -> int -> unit) -> unit
(** Callback on each FLAG_ERROR report: node id, rule index. *)
