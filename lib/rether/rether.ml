let src = Logs.Src.create "vw.rether" ~doc:"Rether token-passing protocol"

module Log = (val Logs.src_log src : Logs.LOG)

let opcode_token = 0x0001
let opcode_token_ack = 0x0010
let opcode_evict = 0x0002
let opcode_join = 0x0003

type config = {
  ring : Vw_net.Mac.t list;
  token_hold : Vw_sim.Simtime.t;
  ack_timeout : Vw_sim.Simtime.t;
  token_transmit_attempts : int;
  watchdog_timeout : Vw_sim.Simtime.t;
  gate_traffic : bool;
  max_gate_queue : int;
  cycle_budget : int;
      (* bytes a full token cycle may carry in real-time traffic; bounds
         admission control *)
  is_realtime : Vw_net.Eth.t -> bool;
      (* classifies gated egress frames into the RT or best-effort queue *)
  broken_no_eviction : bool;
}

let default_config ~ring =
  {
    ring;
    token_hold = Vw_sim.Simtime.ms 1;
    ack_timeout = Vw_sim.Simtime.ms 20;
    token_transmit_attempts = 3;
    watchdog_timeout = Vw_sim.Simtime.ms 500;
    gate_traffic = true;
    max_gate_queue = 256;
    (* 100 Mbps x a ~5 ms cycle, leaving headroom for tokens and BE data *)
    cycle_budget = 48_000;
    is_realtime = (fun _ -> false);
    broken_no_eviction = false;
  }

type stats = {
  mutable tokens_received : int;
  mutable tokens_passed : int;
  mutable token_sends : int;
  mutable token_retransmissions : int;
  mutable acks_sent : int;
  mutable duplicates_ignored : int;
  mutable evictions : int;
  mutable regenerations : int;
  mutable gated_frames : int;
  mutable gate_drops : int;
  mutable rejoins : int;
  mutable rt_frames : int; (* real-time frames released under reservation *)
  mutable rt_deferred : int; (* RT frames held for lack of reservation *)
}

type passing = {
  successor : Vw_net.Mac.t;
  token_seq : int;
  mutable attempts : int;
  mutable ack_timer : Vw_stack.Host.timer option;
}

type t = {
  host : Vw_stack.Host.t;
  config : config;
  stats : stats;
  mutable view : Vw_net.Mac.t list; (* live members in ring order *)
  mutable holding : bool;
  mutable last_token_seq : int;
  mutable passing : passing option;
  mutable hold_timer : Vw_stack.Host.timer option;
  mutable last_activity : Vw_sim.Simtime.t;
  gate : Vw_net.Eth.t Queue.t; (* best-effort egress, token-gated *)
  rt_gate : Vw_net.Eth.t Queue.t; (* real-time egress, reservation-gated *)
  mutable reservation : int; (* bytes per cycle this node may send as RT *)
  mutable ring_change_cb : Vw_net.Mac.t list -> unit;
  gate_priority : int;
}

let holds_token t = t.holding
let ring_view t = t.view
let stats t = t.stats
let on_ring_change t cb = t.ring_change_cb <- cb

let new_stats () =
  {
    tokens_received = 0;
    tokens_passed = 0;
    token_sends = 0;
    token_retransmissions = 0;
    acks_sent = 0;
    duplicates_ignored = 0;
    evictions = 0;
    regenerations = 0;
    gated_frames = 0;
    gate_drops = 0;
    rejoins = 0;
    rt_frames = 0;
    rt_deferred = 0;
  }

let now t = Vw_sim.Engine.now (Vw_stack.Host.engine t.host)
let touch t = t.last_activity <- now t

(* payload = opcode(2) seq(4) [mac(6)] *)
let make_payload ~opcode ~seq ?mac () =
  let extra = match mac with Some _ -> 6 | None -> 0 in
  let p = Bytes.create (6 + extra) in
  Vw_util.Hexutil.set_int_be p ~pos:0 ~len:2 opcode;
  Vw_util.Hexutil.set_int_be p ~pos:2 ~len:4 (seq land 0xFFFFFFFF);
  (match mac with Some m -> Vw_net.Mac.write m p ~pos:6 | None -> ());
  p

let send_control t ~dst ~opcode ~seq ?mac () =
  let frame =
    Vw_net.Eth.make ~dst ~src:(Vw_stack.Host.mac t.host)
      ~ethertype:Vw_net.Eth.ethertype_rether
      (make_payload ~opcode ~seq ?mac ())
  in
  touch t;
  Vw_stack.Host.send_frame t.host frame

let successor_of t mac =
  (* next live member after [mac] in ring order, wrapping around *)
  let rec find = function
    | [] -> None
    | [ last ] ->
        if Vw_net.Mac.equal last mac then List.nth_opt t.view 0 else None
    | m :: (next :: _ as rest) ->
        if Vw_net.Mac.equal m mac then Some next else find rest
  in
  match find t.view with
  | Some next when not (Vw_net.Mac.equal next mac) -> Some next
  | _ -> None

let canonical_insert t mac =
  (* Re-insert [mac] into the view at its position in the configured ring. *)
  if List.exists (Vw_net.Mac.equal mac) t.view then ()
  else begin
    let ordered =
      List.filter
        (fun m ->
          List.exists (Vw_net.Mac.equal m) t.view || Vw_net.Mac.equal m mac)
        t.config.ring
    in
    t.view <- ordered;
    t.ring_change_cb t.view
  end

let remove_member t mac =
  if List.exists (Vw_net.Mac.equal mac) t.view then begin
    t.view <- List.filter (fun m -> not (Vw_net.Mac.equal m mac)) t.view;
    t.ring_change_cb t.view
  end

let release t frame =
  Vw_stack.Host.reinject t.host Vw_stack.Hook.Egress
    ~from_priority:t.gate_priority frame

(* On token arrival: first the real-time queue up to this node's
   reservation, then all pending best-effort traffic (the paper's Rether
   serves RT sessions their reserved bandwidth each cycle and gives
   leftovers to best-effort data). *)
let flush_gate t =
  let rt_left = ref t.reservation in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.rt_gate with
    | Some frame when Vw_net.Eth.size frame <= !rt_left ->
        ignore (Queue.pop t.rt_gate);
        rt_left := !rt_left - Vw_net.Eth.size frame;
        t.stats.rt_frames <- t.stats.rt_frames + 1;
        release t frame
    | Some _ | None -> continue := false
  done;
  if not (Queue.is_empty t.rt_gate) then
    t.stats.rt_deferred <- t.stats.rt_deferred + Queue.length t.rt_gate;
  while not (Queue.is_empty t.gate) do
    release t (Queue.pop t.gate)
  done

let cancel_ack_timer t =
  match t.passing with
  | Some p -> (
      match p.ack_timer with
      | Some timer ->
          Vw_stack.Host.cancel_timer t.host timer;
          p.ack_timer <- None
      | None -> ())
  | None -> ()

let rec become_holder t ~seq =
  t.holding <- true;
  t.last_token_seq <- seq;
  flush_gate t;
  (match t.hold_timer with
  | Some timer -> Vw_stack.Host.cancel_timer t.host timer
  | None -> ());
  t.hold_timer <-
    Some
      (Vw_stack.Host.set_timer t.host ~granularity:`Fine
         ~delay:t.config.token_hold (fun () ->
           t.hold_timer <- None;
           pass_token t))

and pass_token t =
  let self = Vw_stack.Host.mac t.host in
  match successor_of t self with
  | None ->
      (* Lonely ring: keep the token and look again after a hold time. *)
      become_holder t ~seq:(t.last_token_seq + 1)
  | Some successor ->
      t.holding <- false;
      let token_seq = t.last_token_seq + 1 in
      t.last_token_seq <- token_seq;
      let p = { successor; token_seq; attempts = 1; ack_timer = None } in
      t.passing <- Some p;
      t.stats.token_sends <- t.stats.token_sends + 1;
      send_control t ~dst:successor ~opcode:opcode_token ~seq:token_seq ();
      arm_ack_timer t p

and arm_ack_timer t p =
  p.ack_timer <-
    Some
      (Vw_stack.Host.set_timer t.host ~delay:t.config.ack_timeout (fun () ->
           p.ack_timer <- None;
           on_ack_timeout t p))

and on_ack_timeout t p =
  match t.passing with
  | Some current when current == p ->
      if
        p.attempts >= t.config.token_transmit_attempts
        && not t.config.broken_no_eviction
      then begin
        (* Successor presumed dead: evict it and reconstruct the ring. *)
        Log.info (fun m ->
            m "%s: evicting %s after %d token transmissions"
              (Vw_stack.Host.name t.host)
              (Vw_net.Mac.to_string p.successor)
              p.attempts);
        t.stats.evictions <- t.stats.evictions + 1;
        remove_member t p.successor;
        send_control t ~dst:Vw_net.Mac.broadcast ~opcode:opcode_evict
          ~seq:p.token_seq ~mac:p.successor ();
        t.passing <- None;
        t.holding <- true;
        pass_token t
      end
      else begin
        p.attempts <- p.attempts + 1;
        t.stats.token_sends <- t.stats.token_sends + 1;
        t.stats.token_retransmissions <- t.stats.token_retransmissions + 1;
        send_control t ~dst:p.successor ~opcode:opcode_token ~seq:p.token_seq ();
        arm_ack_timer t p
      end
  | _ -> ()

let on_token t ~from ~seq =
  t.stats.acks_sent <- t.stats.acks_sent + 1;
  send_control t ~dst:from ~opcode:opcode_token_ack ~seq ();
  if seq <= t.last_token_seq && t.stats.tokens_received > 0 then
    t.stats.duplicates_ignored <- t.stats.duplicates_ignored + 1
  else begin
    t.stats.tokens_received <- t.stats.tokens_received + 1;
    become_holder t ~seq
  end

let on_token_ack t ~from ~seq =
  match t.passing with
  | Some p
    when Vw_net.Mac.equal p.successor from && seq = p.token_seq ->
      cancel_ack_timer t;
      t.passing <- None;
      t.stats.tokens_passed <- t.stats.tokens_passed + 1
  | _ -> ()

let handle_frame t (frame : Vw_net.Eth.t) =
  touch t;
  let p = frame.payload in
  if Bytes.length p >= 6 then begin
    let opcode = Vw_util.Hexutil.to_int_be p ~pos:0 ~len:2 in
    let seq = Vw_util.Hexutil.to_int_be p ~pos:2 ~len:4 in
    let self = Vw_stack.Host.mac t.host in
    if opcode = opcode_token && Vw_net.Mac.equal frame.dst self then
      on_token t ~from:frame.src ~seq
    else if opcode = opcode_token_ack && Vw_net.Mac.equal frame.dst self then
      on_token_ack t ~from:frame.src ~seq
    else if opcode = opcode_evict && Bytes.length p >= 12 then begin
      let mac = Vw_net.Mac.of_bytes p ~pos:6 in
      if not (Vw_net.Mac.equal mac self) then remove_member t mac
    end
    else if opcode = opcode_join && Bytes.length p >= 12 then begin
      let mac = Vw_net.Mac.of_bytes p ~pos:6 in
      canonical_insert t mac;
      if t.holding then t.stats.rejoins <- t.stats.rejoins + 1
    end
  end

let gate_handler t (frame : Vw_net.Eth.t) =
  if
    (not t.config.gate_traffic)
    || t.holding
    || frame.ethertype <> Vw_net.Eth.ethertype_ipv4
  then Vw_stack.Hook.Accept frame
  else begin
    let queue = if t.config.is_realtime frame then t.rt_gate else t.gate in
    if Queue.length queue >= t.config.max_gate_queue then begin
      t.stats.gate_drops <- t.stats.gate_drops + 1;
      Vw_stack.Hook.Drop
    end
    else begin
      t.stats.gated_frames <- t.stats.gated_frames + 1;
      Queue.add frame queue;
      Vw_stack.Hook.Stolen
    end
  end

let arm_watchdog t =
  let rec loop () =
    ignore
      (Vw_stack.Host.set_timer t.host ~delay:t.config.watchdog_timeout
         (fun () ->
           let idle = Vw_sim.Simtime.(now t - t.last_activity) in
           if
             idle >= t.config.watchdog_timeout
             && (not t.holding)
             && t.passing = None
           then begin
             (* The ring went silent: the lowest-MAC live member recreates
                the token. *)
             let self = Vw_stack.Host.mac t.host in
             let lowest =
               List.fold_left
                 (fun acc m ->
                   match acc with
                   | None -> Some m
                   | Some best ->
                       if Vw_net.Mac.compare m best < 0 then Some m else acc)
                 None t.view
             in
             match lowest with
             | Some low when Vw_net.Mac.equal low self ->
                 Log.info (fun m ->
                     m "%s: watchdog regenerating token"
                       (Vw_stack.Host.name t.host));
                 t.stats.regenerations <- t.stats.regenerations + 1;
                 (* The silent holder is gone; evict it so the ring view
                    converges. We cannot know who held it, so just take
                    over. *)
                 become_holder t ~seq:(t.last_token_seq + 1)
             | _ -> ()
           end;
           loop ()))
  in
  loop ()

let install ?config host =
  let config =
    match config with Some c -> c | None -> default_config ~ring:[]
  in
  if not (List.exists (Vw_net.Mac.equal (Vw_stack.Host.mac host)) config.ring)
  then invalid_arg "Rether.install: host not a ring member";
  let t =
    {
      host;
      config;
      stats = new_stats ();
      view = config.ring;
      holding = false;
      last_token_seq = -1;
      passing = None;
      hold_timer = None;
      last_activity = Vw_sim.Engine.now (Vw_stack.Host.engine host);
      gate = Queue.create ();
      rt_gate = Queue.create ();
      reservation = 0;
      ring_change_cb = (fun _ -> ());
      gate_priority = 50;
    }
  in
  Vw_stack.Host.set_ethertype_handler host Vw_net.Eth.ethertype_rether
    (handle_frame t);
  if config.gate_traffic then
    ignore
      (Vw_stack.Host.add_hook host Vw_stack.Hook.Egress
         ~priority:t.gate_priority ~name:"rether-gate" (gate_handler t));
  arm_watchdog t;
  t

let start t = become_holder t ~seq:0

(* Admission control is local: a production Rether arbitrates reservations
   over the ring; for the behaviours exercised here (RT traffic surviving a
   best-effort hog; over-subscription rejected) per-node admission against
   the cycle budget is the same decision procedure. *)
let reserve t ~bytes_per_cycle =
  if bytes_per_cycle < 0 then invalid_arg "Rether.reserve: negative";
  if t.reservation + bytes_per_cycle > t.config.cycle_budget then false
  else begin
    t.reservation <- t.reservation + bytes_per_cycle;
    true
  end

let release_reservation t = t.reservation <- 0
let reservation t = t.reservation

let rejoin t =
  canonical_insert t (Vw_stack.Host.mac t.host);
  send_control t ~dst:Vw_net.Mac.broadcast ~opcode:opcode_join
    ~seq:(t.last_token_seq + 1)
    ~mac:(Vw_stack.Host.mac t.host) ()
