(** Rether — the software token-passing real-time Ethernet protocol used as
    the paper's second case study (Section 6.2; Venkatramani & Chiueh,
    SIGCOMM '95).

    A control token circulates among the ring members in a fixed round-robin
    order; a node may transmit data only while holding the token. The
    implementation here covers the behaviours the paper's test script
    observes, plus the recovery machinery it exercises:

    - token frames with ethertype [0x9900] and a 16-bit opcode at payload
      offset 0: [0x0001] token, [0x0010] token-ack — the exact patterns of
      the Figure 6 filter table;
    - on passing the token, the sender waits for a token-ack and retransmits
      on timeout; after [token_transmit_attempts] total transmissions
      without an ack it declares the successor dead, {e evicts} it
      (broadcasting a membership update) and passes the token to the next
      live member — reconstructing the ring as the paper describes;
    - a watchdog regenerates the token at the lowest-MAC live member if the
      ring goes quiet (e.g. the token holder itself crashed);
    - optionally ({!config.gate_traffic}), IP egress is gated: frames queue
      while the node does not hold the token and flush on token arrival —
      Rether's medium-access regulation, which the node1↔node4 TCP stream of
      the test scenario rides on;
    - an evicted node that comes back can rejoin: it broadcasts a JOIN
      request and the current token holder re-inserts it (the protocol's
      membership extension, exercised by tests).

    Duplicate tokens (from a lost ack followed by retransmission) are
    suppressed with a token sequence number; duplicates are re-acked but not
    acted upon, preserving the single-token invariant. *)

type config = {
  ring : Vw_net.Mac.t list;  (** full ring in round-robin order *)
  token_hold : Vw_sim.Simtime.t;  (** residence time per visit; default 1 ms *)
  ack_timeout : Vw_sim.Simtime.t;  (** token-ack wait; default 20 ms *)
  token_transmit_attempts : int;
      (** total token transmissions to one successor before eviction;
          default 3, matching the Figure 6 analysis rules *)
  watchdog_timeout : Vw_sim.Simtime.t;
      (** ring-silence duration before token regeneration; default 500 ms *)
  gate_traffic : bool;  (** gate IP egress on token possession; default true *)
  max_gate_queue : int;  (** per-queue gated-frame bound; overflow is dropped *)
  cycle_budget : int;
      (** admission-control ceiling: bytes of real-time traffic one token
          cycle may carry (default 48 kB, a ~5 ms cycle at 100 Mbps with
          headroom) *)
  is_realtime : Vw_net.Eth.t -> bool;
      (** classifies gated egress frames: [true] goes to the real-time
          queue, served under this node's reservation; [false] is best
          effort. Default: nothing is real-time. *)
  broken_no_eviction : bool;
      (** bug knob: keep retransmitting the token to a dead successor
          forever instead of reconstructing the ring — the class of
          implementation fault the Figure 6 analysis script catches *)
}

val default_config : ring:Vw_net.Mac.t list -> config

type stats = {
  mutable tokens_received : int;
  mutable tokens_passed : int;  (** distinct successful hand-offs started *)
  mutable token_sends : int;  (** token frames sent, retransmissions included *)
  mutable token_retransmissions : int;
  mutable acks_sent : int;
  mutable duplicates_ignored : int;
  mutable evictions : int;  (** successors this node declared dead *)
  mutable regenerations : int;  (** tokens recreated by the watchdog *)
  mutable gated_frames : int;
  mutable gate_drops : int;
  mutable rejoins : int;  (** members re-inserted by this node *)
  mutable rt_frames : int;  (** real-time frames released under reservation *)
  mutable rt_deferred : int;
      (** queue lengths of real-time frames left waiting at cycle ends *)
}

type t

val install : ?config:config -> Vw_stack.Host.t -> t
(** Adds the ethertype handler (and the gating hook when enabled). The host
    must appear in [config.ring]. @raise Invalid_argument otherwise. *)

val start : t -> unit
(** Create the initial token at this node (call on exactly one member). *)

val rejoin : t -> unit
(** Ask to be re-inserted after an eviction (broadcasts a JOIN request). *)

(** {1 Real-time bandwidth reservation}

    Rether's raison d'etre (Venkatramani & Chiueh, SIGCOMM '95) is bandwidth
    guarantees: a session reserves transmission budget per token cycle and
    is served that budget on every token visit, ahead of any best-effort
    traffic. *)

val reserve : t -> bytes_per_cycle:int -> bool
(** Request [bytes_per_cycle] of additional real-time budget on this node;
    [false] when admission control rejects it (the node's total would
    exceed [cycle_budget]). *)

val release_reservation : t -> unit
(** Drop this node's reservation to zero. *)

val reservation : t -> int

val holds_token : t -> bool
val ring_view : t -> Vw_net.Mac.t list
(** This node's current view of live members, in ring order. *)

val stats : t -> stats
val on_ring_change : t -> (Vw_net.Mac.t list -> unit) -> unit

(** Wire opcodes, exposed for FSL scripts and tests. *)

val opcode_token : int (* 0x0001 *)
val opcode_token_ack : int (* 0x0010 *)
val opcode_evict : int (* 0x0002 *)
val opcode_join : int (* 0x0003 *)
