(** A from-scratch TCP implementation — the protocol under test in the
    paper's Section 6.1 case study.

    This is a deliberately classic Reno-style TCP modeled on what the
    paper's testbed ran (Linux 2.4.17): 3-way handshake, byte sequence
    space, cumulative acks (one ack per received data segment, no delayed
    acks), slow start and congestion avoidance with a packet-counted
    congestion window, retransmission timeout with exponential backoff and
    Karn's rule, and 3-dup-ack fast retransmit. The behaviours the FSL test
    script observes are all here:

    - dropping the SYNACK forces a SYN retransmission, after which
      [ssthresh] is 2 and [cwnd] is 1 — the paper's trick for making the
      slow-start → congestion-avoidance transition happen within a few
      packets;
    - in slow start each new ack grows [cwnd] by one segment;
    - past [ssthresh], [cwnd] grows by one segment per [cwnd] acks.

    The [broken_*] config knobs introduce the kinds of implementation bugs
    a VirtualWire analysis script is supposed to catch; they exist so the
    test suite can verify the tester. *)

type config = {
  mss : int;  (** segment payload size, default 1000 bytes *)
  initial_cwnd : int;  (** segments, default 1 *)
  initial_ssthresh : int;  (** segments, default 64 (the paper's "64KB") *)
  max_cwnd : int;  (** segments, default 128 *)
  rto_initial : Vw_sim.Simtime.t;  (** default 1 s *)
  rto_min : Vw_sim.Simtime.t;  (** default 200 ms, as in Linux *)
  rto_max : Vw_sim.Simtime.t;  (** default 60 s *)
  max_retries : int;  (** per-segment retransmissions before giving up *)
  window : int;  (** advertised receive window, bytes *)
  broken_no_congestion_avoidance : bool;
      (** bug knob: keep slow-start growth past ssthresh *)
  broken_ignore_cwnd : bool;
      (** bug knob: send limited only by the peer window *)
}

val default_config : config

type stats = {
  mutable segments_sent : int;  (** data-bearing segments, first transmission *)
  mutable segments_received : int;
  mutable retransmits : int;
  mutable timeouts : int;  (** RTO firings (including SYN) *)
  mutable fast_retransmits : int;
  mutable bytes_acked : int;
  mutable dup_acks_seen : int;
}

type state =
  | Closed
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

val state_to_string : state -> string

type t
(** A connection. *)

type stack
(** Per-host TCP state (demultiplexer + connection table). *)

type listener

val attach : Vw_stack.Host.t -> stack
(** Install TCP (IP protocol 6) on a host. At most one stack per host. *)

val host : stack -> Vw_stack.Host.t

val listen :
  ?config:config -> stack -> port:int -> on_accept:(t -> unit) -> listener
(** @raise Invalid_argument if the port already has a listener. *)

val close_listener : listener -> unit

val connect :
  ?config:config ->
  stack -> src_port:int -> dst:Vw_net.Ip_addr.t -> dst_port:int -> t
(** Starts the handshake immediately; use [on_established] to learn when it
    completes. *)

(** {1 Connection API} *)

val send : t -> bytes -> unit
(** Append bytes to the send buffer; they are segmentized and transmitted as
    the congestion window allows. *)

val close : t -> unit
(** Half-close: FIN is queued after any buffered data. *)

val abort : t -> unit
(** Send RST and drop the connection. *)

val on_established : t -> (unit -> unit) -> unit
val on_data : t -> (bytes -> unit) -> unit
val on_closed : t -> (unit -> unit) -> unit

(** {1 Introspection (tests, benches, the FAE's ground truth)} *)

val state : t -> state

val cwnd : t -> int
(** Congestion window, in segments. *)

val ssthresh : t -> int
(** Slow-start threshold, in segments. *)

val flight_size : t -> int
(** Unacknowledged bytes in flight. *)

val stats : t -> stats
val config : t -> config
val cwnd_history : t -> (Vw_sim.Simtime.t * int) list
(** Every (time, cwnd) change, oldest first. *)

val bytes_delivered : t -> int
(** In-order payload bytes handed to [on_data]. *)
