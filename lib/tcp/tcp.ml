let src = Logs.Src.create "vw.tcp" ~doc:"VirtualWire TCP implementation"

module Log = (val Logs.src_log src : Logs.LOG)
module Seg = Vw_net.Tcp_segment

type config = {
  mss : int;
  initial_cwnd : int;
  initial_ssthresh : int;
  max_cwnd : int;
  rto_initial : Vw_sim.Simtime.t;
  rto_min : Vw_sim.Simtime.t;
  rto_max : Vw_sim.Simtime.t;
  max_retries : int;
  window : int;
  broken_no_congestion_avoidance : bool;
  broken_ignore_cwnd : bool;
}

let default_config =
  {
    mss = 1000;
    initial_cwnd = 1;
    initial_ssthresh = 64;
    max_cwnd = 128;
    rto_initial = Vw_sim.Simtime.sec 1.0;
    rto_min = Vw_sim.Simtime.ms 200;
    rto_max = Vw_sim.Simtime.sec 60.0;
    max_retries = 12;
    window = 65535;
    broken_no_congestion_avoidance = false;
    broken_ignore_cwnd = false;
  }

type stats = {
  mutable segments_sent : int;
  mutable segments_received : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable bytes_acked : int;
  mutable dup_acks_seen : int;
}

type state =
  | Closed
  | Syn_sent
  | Syn_rcvd
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Last_ack
  | Closing
  | Time_wait

let state_to_string = function
  | Closed -> "CLOSED"
  | Syn_sent -> "SYN_SENT"
  | Syn_rcvd -> "SYN_RCVD"
  | Established -> "ESTABLISHED"
  | Fin_wait_1 -> "FIN_WAIT_1"
  | Fin_wait_2 -> "FIN_WAIT_2"
  | Close_wait -> "CLOSE_WAIT"
  | Last_ack -> "LAST_ACK"
  | Closing -> "CLOSING"
  | Time_wait -> "TIME_WAIT"

type key = int * Vw_net.Ip_addr.t * int (* local port, remote ip, remote port *)

type t = {
  stack : stack;
  conn_config : config;
  key : key;
  local_port : int;
  remote_ip : Vw_net.Ip_addr.t;
  remote_port : int;
  mutable conn_state : state;
  (* send side *)
  iss : int;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable rwnd : int; (* peer's advertised window *)
  out_buf : Buffer.t;
  mutable out_off : int; (* bytes of out_buf already segmentized *)
  mutable rtx_queue : (int * bytes) list; (* (seq, payload), ascending *)
  mutable fin_pending : bool;
  mutable fin_seq : int option; (* seq consumed by our FIN once sent *)
  (* receive side *)
  mutable rcv_nxt : int;
  recv_ooo : (int, bytes) Hashtbl.t;
  mutable fin_rcvd : bool;
  mutable delivered : int;
  (* congestion control, counted in segments like the paper's script *)
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable ca_acks : int; (* the script's CCNT *)
  mutable dupacks : int;
  mutable cwnd_history : (Vw_sim.Simtime.t * int) list; (* newest first *)
  (* RTO state *)
  mutable srtt : float option; (* seconds *)
  mutable rttvar : float;
  mutable rto : Vw_sim.Simtime.t;
  mutable rto_timer : Vw_stack.Host.timer option;
  mutable retries : int;
  mutable timing : (int * Vw_sim.Simtime.t) option; (* (seq end, sent at) *)
  (* callbacks *)
  mutable established_cb : unit -> unit;
  mutable data_cb : bytes -> unit;
  mutable closed_cb : unit -> unit;
  stats : stats;
}

and listener = {
  l_stack : stack;
  l_port : int;
  l_config : config;
  l_on_accept : t -> unit;
}

and stack = {
  host : Vw_stack.Host.t;
  conns : (key, t) Hashtbl.t;
  listeners : (int, listener) Hashtbl.t;
  mutable next_iss : int;
}

let host stack = stack.host
let state t = t.conn_state
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let flight_size t = t.snd_nxt - t.snd_una
let stats t = t.stats
let config t = t.conn_config
let cwnd_history t = List.rev t.cwnd_history
let bytes_delivered t = t.delivered

let new_stats () =
  {
    segments_sent = 0;
    segments_received = 0;
    retransmits = 0;
    timeouts = 0;
    fast_retransmits = 0;
    bytes_acked = 0;
    dup_acks_seen = 0;
  }

let engine t = Vw_stack.Host.engine t.stack.host
let now t = Vw_sim.Engine.now (engine t)

let set_cwnd t v =
  let v = max 1 (min v t.conn_config.max_cwnd) in
  if v <> t.cwnd then begin
    t.cwnd <- v;
    t.cwnd_history <- (now t, v) :: t.cwnd_history
  end

let flight_segments t =
  let mss = t.conn_config.mss in
  (flight_size t + mss - 1) / mss

(* --- segment emission --- *)

let emit t ?(payload = Bytes.create 0) ~seq ~flags () =
  let seg =
    Seg.make ~seq ~ack_seq:(if flags.Seg.ack then t.rcv_nxt else 0) ~flags
      ~window:t.conn_config.window ~src_port:t.local_port
      ~dst_port:t.remote_port payload
  in
  let data =
    Seg.to_bytes ~src:(Vw_stack.Host.ip t.stack.host) ~dst:t.remote_ip seg
  in
  Vw_stack.Host.send_ip t.stack.host ~protocol:Vw_net.Ipv4.protocol_tcp
    ~dst:t.remote_ip data

let ack_flags = { Seg.no_flags with ack = true }
let syn_flags = { Seg.no_flags with syn = true }
let synack_flags = { Seg.no_flags with syn = true; ack = true }
let fin_flags = { Seg.no_flags with fin = true; ack = true }
let rst_flags = { Seg.no_flags with rst = true }

let send_pure_ack t = emit t ~seq:t.snd_nxt ~flags:ack_flags ()

(* --- RTO management --- *)

let stop_rto t =
  match t.rto_timer with
  | Some timer ->
      Vw_stack.Host.cancel_timer t.stack.host timer;
      t.rto_timer <- None
  | None -> ()

let clamp_rto t v =
  let v = max t.conn_config.rto_min v in
  min t.conn_config.rto_max v

let compute_rto t =
  match t.srtt with
  | None -> t.conn_config.rto_initial
  | Some srtt -> clamp_rto t (Vw_sim.Simtime.sec (srtt +. (4.0 *. t.rttvar)))

let rec restart_rto t =
  stop_rto t;
  t.rto_timer <-
    Some
      (Vw_stack.Host.set_timer t.stack.host ~delay:t.rto
         (fun () -> on_rto t))

and on_rto t =
  t.rto_timer <- None;
  if t.conn_state <> Closed && t.conn_state <> Time_wait then begin
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.retries <- t.retries + 1;
    t.timing <- None (* Karn: never time a retransmitted segment *);
    if t.retries > t.conn_config.max_retries then begin
      Log.info (fun m ->
          m "%s: tcp %d->%d gave up after %d retries"
            (Vw_stack.Host.name t.stack.host)
            t.local_port t.remote_port t.conn_config.max_retries);
      drop_connection t
    end
    else begin
      (* Loss response: ssthresh halves the flight (floor 2 segments),
         cwnd collapses to 1 — the Linux 2.4 behaviour the paper's
         Section 6.1 script depends on (a SYN timeout yields ssthresh=2,
         cwnd=1). *)
      t.ssthresh <- max (flight_segments t / 2) 2;
      set_cwnd t 1;
      t.ca_acks <- 0;
      t.dupacks <- 0;
      t.rto <- clamp_rto t Vw_sim.Simtime.(t.rto + t.rto) (* back off 2x *);
      retransmit_base t;
      restart_rto t
    end
  end

and retransmit_base t =
  match t.conn_state with
  | Syn_sent ->
      t.stats.retransmits <- t.stats.retransmits + 1;
      emit t ~seq:t.iss ~flags:syn_flags ()
  | Syn_rcvd ->
      t.stats.retransmits <- t.stats.retransmits + 1;
      emit t ~seq:t.iss ~flags:synack_flags ()
  | _ -> (
      match t.rtx_queue with
      | (seq, payload) :: _ ->
          t.stats.retransmits <- t.stats.retransmits + 1;
          emit t ~payload ~seq
            ~flags:{ ack_flags with psh = Bytes.length payload > 0 }
            ()
      | [] -> (
          (* Only the FIN can be outstanding. *)
          match t.fin_seq with
          | Some seq when t.snd_una <= seq ->
              t.stats.retransmits <- t.stats.retransmits + 1;
              emit t ~seq ~flags:fin_flags ()
          | _ -> ()))

and drop_connection t =
  stop_rto t;
  t.conn_state <- Closed;
  Hashtbl.remove t.stack.conns t.key;
  t.closed_cb ()

(* --- sending --- *)

let available_data t = Buffer.length t.out_buf - t.out_off

let effective_window t =
  if t.conn_config.broken_ignore_cwnd then t.rwnd
  else min (t.cwnd * t.conn_config.mss) t.rwnd

let rec try_send t =
  match t.conn_state with
  | Established | Close_wait ->
      let progress = ref true in
      while !progress do
        progress := false;
        let wnd = effective_window t in
        let room = wnd - flight_size t in
        let avail = available_data t in
        if avail > 0 && room > 0 then begin
          let len = min t.conn_config.mss (min avail room) in
          let payload = Bytes.create len in
          Bytes.blit_string (Buffer.contents t.out_buf) t.out_off payload 0 len;
          t.out_off <- t.out_off + len;
          let seq = t.snd_nxt in
          t.snd_nxt <- t.snd_nxt + len;
          t.rtx_queue <- t.rtx_queue @ [ (seq, payload) ];
          t.stats.segments_sent <- t.stats.segments_sent + 1;
          if t.timing = None then t.timing <- Some (seq + len, now t);
          emit t ~payload ~seq ~flags:{ ack_flags with psh = true } ();
          if t.rto_timer = None then restart_rto t;
          progress := true
        end
      done;
      if t.fin_pending && available_data t = 0 && t.fin_seq = None then begin
        let seq = t.snd_nxt in
        t.fin_seq <- Some seq;
        t.snd_nxt <- t.snd_nxt + 1;
        t.conn_state <-
          (match t.conn_state with
          | Close_wait -> Last_ack
          | _ -> Fin_wait_1);
        emit t ~seq ~flags:fin_flags ();
        if t.rto_timer = None then restart_rto t
      end
  | _ -> ()

and send t data =
  Buffer.add_bytes t.out_buf data;
  try_send t

(* --- receiving --- *)

let rtt_sample t sample_s =
  (match t.srtt with
  | None ->
      t.srtt <- Some sample_s;
      t.rttvar <- sample_s /. 2.0
  | Some srtt ->
      let alpha = 0.125 and beta = 0.25 in
      t.rttvar <-
        ((1.0 -. beta) *. t.rttvar) +. (beta *. Float.abs (srtt -. sample_s));
      t.srtt <- Some (((1.0 -. alpha) *. srtt) +. (alpha *. sample_s)));
  t.rto <- compute_rto t

let congestion_on_new_ack t =
  if t.conn_config.broken_no_congestion_avoidance || t.cwnd <= t.ssthresh then
    (* slow start: one segment per new ack *)
    set_cwnd t (t.cwnd + 1)
  else begin
    (* congestion avoidance: one segment per window of acks *)
    t.ca_acks <- t.ca_acks + 1;
    if t.ca_acks > t.cwnd then begin
      t.ca_acks <- 0;
      set_cwnd t (t.cwnd + 1)
    end
  end

let fin_acked t ack =
  match t.fin_seq with Some seq -> ack >= seq + 1 | None -> false

let enter_time_wait t =
  stop_rto t;
  t.conn_state <- Time_wait;
  ignore
    (Vw_stack.Host.set_timer t.stack.host
       ~delay:(Vw_sim.Simtime.sec 1.0)
       (fun () -> if t.conn_state = Time_wait then drop_connection t))

let process_new_ack t ack =
  let acked = ack - t.snd_una in
  t.snd_una <- ack;
  t.stats.bytes_acked <- t.stats.bytes_acked + acked;
  t.dupacks <- 0;
  t.retries <- 0;
  t.rtx_queue <-
    List.filter (fun (seq, payload) -> seq + Bytes.length payload > ack)
      t.rtx_queue;
  (match t.timing with
  | Some (seq_end, sent_at) when ack >= seq_end ->
      rtt_sample t (Vw_sim.Simtime.to_sec Vw_sim.Simtime.(now t - sent_at));
      t.timing <- None
  | _ -> ());
  congestion_on_new_ack t;
  if t.snd_una = t.snd_nxt then stop_rto t else restart_rto t

let fast_retransmit t =
  t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
  t.ssthresh <- max (flight_segments t / 2) 2;
  set_cwnd t t.ssthresh;
  t.ca_acks <- 0;
  t.timing <- None;
  (match t.rtx_queue with
  | (seq, payload) :: _ ->
      t.stats.retransmits <- t.stats.retransmits + 1;
      emit t ~payload ~seq ~flags:{ ack_flags with psh = true } ()
  | [] -> ());
  restart_rto t

let rec deliver_in_order t =
  match Hashtbl.find_opt t.recv_ooo t.rcv_nxt with
  | Some payload ->
      Hashtbl.remove t.recv_ooo t.rcv_nxt;
      t.rcv_nxt <- t.rcv_nxt + Bytes.length payload;
      t.delivered <- t.delivered + Bytes.length payload;
      t.data_cb payload;
      deliver_in_order t
  | None -> ()

let handle_payload t (seg : Seg.t) =
  let len = Bytes.length seg.payload in
  if len > 0 then begin
    if seg.seq = t.rcv_nxt then begin
      t.rcv_nxt <- t.rcv_nxt + len;
      t.delivered <- t.delivered + len;
      t.data_cb seg.payload;
      deliver_in_order t
    end
    else if seg.seq > t.rcv_nxt && Hashtbl.length t.recv_ooo < 4096 then
      Hashtbl.replace t.recv_ooo seg.seq seg.payload;
    true (* an ack is owed *)
  end
  else false

let handle_fin t (seg : Seg.t) =
  (* Process FIN only once its sequence position is reached. *)
  seg.flags.fin && seg.seq + Bytes.length seg.payload = t.rcv_nxt && not t.fin_rcvd

let conn_receive t (seg : Seg.t) =
  t.stats.segments_received <- t.stats.segments_received + 1;
  if seg.flags.rst then begin
    if t.conn_state <> Closed then begin
      Log.debug (fun m ->
          m "%s: connection reset by peer" (Vw_stack.Host.name t.stack.host));
      drop_connection t
    end
  end
  else begin
    t.rwnd <- seg.window;
    match t.conn_state with
    | Closed -> ()
    | Syn_sent ->
        if seg.flags.syn && seg.flags.ack && seg.ack_seq = t.iss + 1 then begin
          t.snd_una <- t.iss + 1;
          t.rcv_nxt <- seg.seq + 1;
          t.conn_state <- Established;
          t.retries <- 0;
          stop_rto t;
          send_pure_ack t;
          t.established_cb ();
          try_send t
        end
    | Syn_rcvd ->
        if seg.flags.syn && not seg.flags.ack then
          (* Duplicate SYN: our SYNACK was lost; resend it. *)
          emit t ~seq:t.iss ~flags:synack_flags ()
        else if seg.flags.ack && seg.ack_seq = t.iss + 1 then begin
          t.snd_una <- t.iss + 1;
          t.conn_state <- Established;
          t.retries <- 0;
          stop_rto t;
          t.established_cb ();
          (* The handshake ACK may carry data. *)
          let owed = handle_payload t seg in
          if owed then send_pure_ack t;
          try_send t
        end
    | Established | Fin_wait_1 | Fin_wait_2 | Close_wait | Last_ack | Closing
      ->
        (* ACK processing *)
        (if seg.flags.ack then
           if seg.ack_seq > t.snd_una && seg.ack_seq <= t.snd_nxt then
             process_new_ack t seg.ack_seq
           else if
             seg.ack_seq = t.snd_una
             && t.snd_nxt > t.snd_una
             && Bytes.length seg.payload = 0
             && not seg.flags.fin
           then begin
             t.dupacks <- t.dupacks + 1;
             t.stats.dup_acks_seen <- t.stats.dup_acks_seen + 1;
             if t.dupacks = 3 then fast_retransmit t
           end);
        (* state transitions driven by ack of our FIN *)
        (match t.conn_state with
        | Fin_wait_1 when fin_acked t t.snd_una -> t.conn_state <- Fin_wait_2
        | Closing when fin_acked t t.snd_una -> enter_time_wait t
        | Last_ack when fin_acked t t.snd_una -> drop_connection t
        | _ -> ());
        (* payload *)
        let owed = handle_payload t seg in
        (* FIN processing *)
        let fin_now = handle_fin t seg in
        if fin_now then begin
          t.fin_rcvd <- true;
          t.rcv_nxt <- t.rcv_nxt + 1;
          (match t.conn_state with
          | Established -> t.conn_state <- Close_wait
          | Fin_wait_1 -> t.conn_state <- Closing
          | Fin_wait_2 -> enter_time_wait t
          | Close_wait | Last_ack | Closing | Time_wait | Closed | Syn_sent
          | Syn_rcvd ->
              ());
          send_pure_ack t
        end
        else if owed || (Bytes.length seg.payload > 0 && seg.seq < t.rcv_nxt)
        then send_pure_ack t;
        try_send t
    | Time_wait ->
        (* Re-ack anything (e.g. a retransmitted FIN). *)
        if seg.flags.fin then send_pure_ack t
  end

(* --- stack --- *)

let rec attach h =
  let stack =
    { host = h; conns = Hashtbl.create 16; listeners = Hashtbl.create 4;
      next_iss = 10_000 }
  in
  Vw_stack.Host.set_ip_protocol_handler h Vw_net.Ipv4.protocol_tcp
    (fun (packet : Vw_net.Ipv4.t) ->
      match Seg.of_bytes ~src:packet.src ~dst:packet.dst packet.payload with
      | Error e ->
          Log.debug (fun m -> m "%s: dropped segment: %s" (Vw_stack.Host.name h) e)
      | Ok seg -> stack_receive stack packet seg);
  stack

and fresh_iss stack =
  let iss = stack.next_iss in
  stack.next_iss <- stack.next_iss + 64_000;
  iss

and make_conn stack conn_config ~local_port ~remote_ip ~remote_port ~conn_state
    ~iss ~rcv_nxt =
  let t =
    {
      stack;
      conn_config;
      key = (local_port, remote_ip, remote_port);
      local_port;
      remote_ip;
      remote_port;
      conn_state;
      iss;
      snd_una = iss;
      snd_nxt = iss + 1;
      rwnd = 65535;
      out_buf = Buffer.create 4096;
      out_off = 0;
      rtx_queue = [];
      fin_pending = false;
      fin_seq = None;
      rcv_nxt;
      recv_ooo = Hashtbl.create 16;
      fin_rcvd = false;
      delivered = 0;
      cwnd = conn_config.initial_cwnd;
      ssthresh = conn_config.initial_ssthresh;
      ca_acks = 0;
      dupacks = 0;
      cwnd_history = [];
      srtt = None;
      rttvar = 0.0;
      rto = conn_config.rto_initial;
      rto_timer = None;
      retries = 0;
      timing = None;
      established_cb = (fun () -> ());
      data_cb = (fun _ -> ());
      closed_cb = (fun () -> ());
      stats = new_stats ();
    }
  in
  t.cwnd_history <- [ (Vw_sim.Engine.now (Vw_stack.Host.engine stack.host),
                       t.cwnd) ];
  Hashtbl.replace stack.conns t.key t;
  t

and stack_receive stack (packet : Vw_net.Ipv4.t) (seg : Seg.t) =
  let key = (seg.dst_port, packet.src, seg.src_port) in
  match Hashtbl.find_opt stack.conns key with
  | Some conn -> conn_receive conn seg
  | None -> (
      match Hashtbl.find_opt stack.listeners seg.dst_port with
      | Some listener when seg.flags.syn && not seg.flags.ack ->
          let conn =
            make_conn stack listener.l_config ~local_port:seg.dst_port
              ~remote_ip:packet.src ~remote_port:seg.src_port
              ~conn_state:Syn_rcvd ~iss:(fresh_iss stack)
              ~rcv_nxt:(seg.seq + 1)
          in
          conn.rwnd <- seg.window;
          listener.l_on_accept conn;
          emit conn ~seq:conn.iss ~flags:synack_flags ();
          restart_rto conn
      | _ ->
          (* No home for this segment: RST, unless it is itself a RST. *)
          if not seg.flags.rst then begin
            let rst =
              Seg.make ~seq:seg.ack_seq ~ack_seq:0 ~flags:rst_flags
                ~window:0 ~src_port:seg.dst_port ~dst_port:seg.src_port
                (Bytes.create 0)
            in
            Vw_stack.Host.send_ip stack.host
              ~protocol:Vw_net.Ipv4.protocol_tcp ~dst:packet.src
              (Seg.to_bytes ~src:packet.dst ~dst:packet.src rst)
          end)

let listen ?(config = default_config) stack ~port ~on_accept =
  if Hashtbl.mem stack.listeners port then
    invalid_arg (Printf.sprintf "Tcp.listen: port %d already listening" port);
  let listener =
    { l_stack = stack; l_port = port; l_config = config; l_on_accept = on_accept }
  in
  Hashtbl.replace stack.listeners port listener;
  listener

let close_listener listener =
  Hashtbl.remove listener.l_stack.listeners listener.l_port

let connect ?(config = default_config) stack ~src_port ~dst ~dst_port =
  let t =
    make_conn stack config ~local_port:src_port ~remote_ip:dst
      ~remote_port:dst_port ~conn_state:Syn_sent ~iss:(fresh_iss stack)
      ~rcv_nxt:0
  in
  emit t ~seq:t.iss ~flags:syn_flags ();
  restart_rto t;
  t

let close t =
  match t.conn_state with
  | Established | Close_wait ->
      t.fin_pending <- true;
      try_send t
  | Syn_sent | Syn_rcvd -> drop_connection t
  | _ -> ()

let abort t =
  if t.conn_state <> Closed then begin
    emit t ~seq:t.snd_nxt ~flags:rst_flags ();
    drop_connection t
  end

let on_established t cb = t.established_cb <- cb
let on_data t cb = t.data_cb <- cb
let on_closed t cb = t.closed_cb <- cb
