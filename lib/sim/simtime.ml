type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec s = int_of_float ((s *. 1e9) +. 0.5)
let jiffy = ms 10
let to_sec t = float_of_int t /. 1e9
let to_ms t = float_of_int t /. 1e6
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let compare = Stdlib.compare
let pp ppf t = Format.fprintf ppf "%.6fs" (to_sec t)
