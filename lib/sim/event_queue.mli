(** A priority queue of timestamped events with stable FIFO tie-breaking.

    Events scheduled for the same instant fire in insertion order, which
    keeps simulations deterministic — the engine's cascade (packet arrival →
    counter update → control message) frequently schedules several events at
    the same nanosecond. *)

type 'a t

type handle
(** Identifies a scheduled event for cancellation. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:Simtime.t -> 'a -> handle
val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pop : 'a t -> (Simtime.t * 'a) option
(** Removes and returns the earliest live event. *)

val peek_time : 'a t -> Simtime.t option
