(** Simulated time, counted in integer nanoseconds.

    An [int] holds 63 bits here, i.e. ~292 years of nanoseconds, which is
    ample for any test run while keeping arithmetic exact and the event
    queue totally ordered — essential for reproducible fault-injection
    schedules. *)

type t = int
(** Nanoseconds since the start of the simulation. *)

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : float -> t
(** [sec s] converts (fractional) seconds; rounds to the nearest ns. *)

val jiffy : t
(** One Linux-2.4 jiffy: 10 ms. The DELAY fault primitive and host timers are
    quantized to this, as in the paper. *)

val to_sec : t -> float
val to_ms : t -> float
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Renders as seconds with microsecond precision, e.g. ["1.000250s"]. *)
