(** The discrete-event simulation engine.

    A single engine drives one testbed: links, hosts, protocol timers and
    the VirtualWire FIE/FAE all schedule callbacks here. Execution is
    single-threaded and deterministic: events at equal timestamps run in
    scheduling order. *)

type t

type handle
(** A cancellable reference to a scheduled callback. *)

val create : ?seed:int -> unit -> t
(** [create ?seed ()] makes an engine whose root PRNG is seeded with [seed]
    (default 42); components derive their own streams via [prng]. *)

val now : t -> Simtime.t
(** Current simulated time. *)

val prng : t -> Vw_util.Prng.t
(** Derives a fresh independent PRNG stream from the engine's root. *)

val schedule_at : t -> time:Simtime.t -> (unit -> unit) -> handle
(** Schedule a callback at an absolute time. Times in the past run "now"
    (at the current instant, after already-queued events for that instant). *)

val schedule_after : t -> delay:Simtime.t -> (unit -> unit) -> handle
(** Schedule relative to [now]. Negative delays are clamped to zero. *)

val cancel : t -> handle -> unit

val run : ?until:Simtime.t -> ?max_events:int -> t -> unit
(** [run t] processes events until the queue is empty, [until] is reached
    (events strictly after [until] stay queued; [now] advances to [until]),
    or [max_events] callbacks have run. Exceptions from callbacks propagate
    and abort the run. *)

val step : t -> bool
(** Run a single event; [false] if the queue was empty. *)

val pending : t -> int
(** Number of scheduled, uncancelled events. *)

val stop : t -> unit
(** Request that [run] return after the current callback; used by the STOP
    action and scenario timeouts. *)

val stop_requested : t -> bool
(** Whether a {!stop} is pending — i.e. [run] will return before the next
    queued event. Batch processors poll this between frames so a STOP cuts
    a batch short exactly where it would have cut the event stream. *)
