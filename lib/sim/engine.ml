type handle = Event_queue.handle

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Simtime.t;
  root_prng : Vw_util.Prng.t;
  mutable stop_requested : bool;
}

let create ?(seed = 42) () =
  {
    queue = Event_queue.create ();
    clock = Simtime.zero;
    root_prng = Vw_util.Prng.create ~seed;
    stop_requested = false;
  }

let now t = t.clock
let prng t = Vw_util.Prng.split t.root_prng

let schedule_at t ~time fn =
  let time = max time t.clock in
  Event_queue.push t.queue ~time fn

let schedule_after t ~delay fn =
  let delay = max 0 delay in
  schedule_at t ~time:Simtime.(t.clock + delay) fn

let cancel t handle = Event_queue.cancel t.queue handle

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, fn) ->
      t.clock <- max t.clock time;
      fn ();
      true

let run ?until ?max_events t =
  t.stop_requested <- false;
  let executed = ref 0 in
  let budget_left () =
    match max_events with None -> true | Some m -> !executed < m
  in
  let continue = ref true in
  while !continue do
    if t.stop_requested || not (budget_left ()) then continue := false
    else
      match Event_queue.peek_time t.queue with
      | None -> continue := false
      | Some time -> (
          match until with
          | Some u when time > u ->
              t.clock <- max t.clock u;
              continue := false
          | _ ->
              ignore (step t);
              incr executed)
  done;
  match until with
  | Some u when Event_queue.is_empty t.queue && not t.stop_requested ->
      t.clock <- max t.clock u
  | _ -> ()

let pending t = Event_queue.length t.queue
let stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested
