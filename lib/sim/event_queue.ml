(* Binary min-heap ordered by (time, sequence number). Cancellation marks the
   entry dead; dead entries are skipped lazily at pop time. *)

type 'a entry = {
  time : Simtime.t;
  seq : int;
  payload : 'a;
  mutable live : bool;
}

type handle = H : 'a entry -> handle

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  mutable live_count : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0; live_count = 0 }
let is_empty t = t.live_count = 0
let length t = t.live_count

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = max 16 (2 * Array.length t.heap) in
  if t.size > 0 then begin
    let heap = Array.make cap t.heap.(0) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload; live = true } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then
    if t.size = 0 then t.heap <- Array.make 16 entry else grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  t.live_count <- t.live_count + 1;
  sift_up t (t.size - 1);
  H entry

let cancel t (H entry) =
  (* The handle's entry may belong to another queue of the same payload
     type; [live] is per-entry so this is still safe — cancellation only
     marks, removal happens where the entry is stored. *)
  if entry.live then begin
    entry.live <- false;
    (* The live count belongs to the queue holding the entry; since handles
       are only meaningful for the queue that created them, decrement here. *)
    t.live_count <- t.live_count - 1
  end

let rec pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    if top.live then begin
      top.live <- false;
      t.live_count <- t.live_count - 1;
      Some (top.time, top.payload)
    end
    else pop t
  end

let rec peek_time t =
  if t.size = 0 then None
  else if t.heap.(0).live then Some t.heap.(0).time
  else begin
    (* Drop the dead top and retry. *)
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    peek_time t
  end
