(** Typed flight-recorder events for the FIE cascade and control plane.

    Each event captures one step of the per-packet pipeline (classify →
    counter → term → condition → action, Figure 4b) or of the control-plane
    propagation behind it, stamped with the simulation time, the node that
    produced it, and a {e causal id} — the sequence number of the root event
    (the packet classification or control-frame receipt) whose processing
    produced it. Root events are their own cause.

    The JSONL rendering is a stable, documented schema
    ([vw-events/1], see docs/OBSERVABILITY.md); [vwctl run --events] writes
    one [to_json] line per event. *)

type point = Ingress | Egress
type fault_kind = Drop | Delay | Reorder | Dup | Modify

(** Decoded control-plane message, as much of it as the causal stitcher
    needs to pair a send with the matching receive. *)
type ctl =
  | C_init
  | C_start
  | C_counter_update of { cid : int; value : int }
  | C_term_status of { tid : int; status : bool }
  | C_var_bind of { vid : int }
  | C_report_stop of { nid : int }
  | C_report_error of { nid : int; rule : int }

type body =
  | Packet_classified of { point : point; fid : int }
      (** a frame matched filter [fid] at this hook point *)
  | Counter_changed of { cid : int; value : int; delta : int }
      (** this node's view of counter [cid] moved by [delta] to [value] —
          via an observed event, an action, or a control update *)
  | Term_flipped of { tid : int; status : bool }
  | Condition_rose of { did : int }  (** edge-trigger: false → true *)
  | Action_fired of { did : int; aid : int }
  | Fault_applied of { did : int; aid : int; fault : fault_kind }
  | Control_sent of { dst_nid : int; ctl : ctl }
  | Control_received of { ctl : ctl }
  | Report_raised of { nid : int; rule : int option }
      (** [rule = None] for STOP, [Some r] for FLAG_ERROR on rule [r] *)
  | Expect_checked of { xid : int; ok : bool }
      (** verdict of conformance expectation [xid] (CONFORM section),
          appended after the run by [vwctl conform] *)

type t = {
  seq : int;  (** run-global sequence number, dense and monotonic *)
  time : Vw_sim.Simtime.t;
  node : string;  (** testbed node name *)
  nid : int;  (** node-table id; -1 before INIT *)
  cause : int;  (** [seq] of the root event; roots point at themselves *)
  body : body;
}

val kind_name : body -> string
val all_kind_names : string list
(** The ten kind tags, in pipeline order. *)

val point_name : point -> string
val fault_name : fault_kind -> string
val ctl_name : ctl -> string

val ctl_equal : ctl -> ctl -> bool
(** Payload equality — pairs a [Control_received] with the [Control_sent]
    that produced it. *)

val kind_code : body -> int
(** The [vw-events/2] kind byte, 0..9 in [all_kind_names] order. *)

val ctl_to_fields : ctl -> int * int * int
(** Flatten a control payload to [(tag, b, c)] for the binary slot
    fields: tag 0 init, 1 start, 2 counter_update (cid, value),
    3 term_status (tid, 0/1), 4 var_bind (vid), 5 report_stop (nid),
    6 report_error (nid, rule). *)

val ctl_of_fields : tag:int -> b:int -> c:int -> (ctl, string) result
(** Inverse of {!ctl_to_fields}. *)

val to_fields : body -> int * int * int * int * int
(** Flatten a body to the [vw-events/2] fixed fields
    [(kind, aux, a, b, c)]: [kind] is {!kind_code}, [aux] a small enum
    byte (hook point, term status, fault kind, ctl tag, or rule-present
    flag), [a] a 32-bit id, [b]/[c] full-width payload ints. *)

val of_fields :
  kind:int -> aux:int -> a:int -> b:int -> c:int -> (body, string) result
(** Inverse of {!to_fields}; [Error] names the out-of-range field. *)

val to_json : t -> string
(** One JSON object, no trailing newline (schema [vw-events/1]). *)

val pp : Format.formatter -> t -> unit
val pp_body : Format.formatter -> body -> unit
