type t = {
  mutable by_id : string array; (* ids are dense, in intern order *)
  mutable count : int;
  ids : (string, int) Hashtbl.t;
}

let max_entries = 0x10000 (* sids are u16 in the vw-events/2 slot layout *)
let max_string_len = 0xffff (* entry lengths are u16 in the file framing *)
let create () = { by_id = Array.make 8 ""; count = 0; ids = Hashtbl.create 16 }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      if t.count >= max_entries then
        invalid_arg "Strtab.intern: string table full (max 65536 entries)";
      if String.length s > max_string_len then
        invalid_arg "Strtab.intern: string longer than 65535 bytes";
      if t.count = Array.length t.by_id then begin
        let a = Array.make (2 * t.count) "" in
        Array.blit t.by_id 0 a 0 t.count;
        t.by_id <- a
      end;
      let id = t.count in
      t.by_id.(id) <- s;
      t.count <- id + 1;
      Hashtbl.add t.ids s id;
      id

let get t id =
  if id < 0 || id >= t.count then invalid_arg "Strtab.get: id out of range";
  t.by_id.(id)

let length t = t.count
let to_list t = List.init t.count (fun i -> t.by_id.(i))
