(** Per-node flight recorder: a bounded ring buffer of typed {!Event}s.

    One recorder installs per testbed node (see
    [Vw_core.Testbed.enable_observability]); all recorders of a run share
    one sequence counter, so merging per-node logs by [seq] recovers the
    global order in which events were recorded.

    {b Zero cost when disabled.} {!null} is a permanently-disabled no-op
    sink; the engine guards every emission site with {!enabled}, so an
    uninstrumented run does exactly one immediate boolean test per would-be
    event and never constructs the event payload. The [bench micro]
    recorder on/off ablation keeps this honest.

    {b Causal ids.} The engine marks the root of each processing context —
    a packet that matched a filter, or a control frame received off the
    wire — with {!emit_root}; every event emitted until the context ends
    (via {!set_cause}) carries that root's sequence number as its [cause].
    Cross-node edges are recovered offline by pairing [Control_received]
    with the [Control_sent] carrying an equal payload (see
    [Vw_core.Explain]). *)

type t

val null : t
(** The disabled sink: {!enabled} is false, {!emit} is a no-op. *)

val create :
  ?capacity:int ->
  node:string ->
  clock:(unit -> Vw_sim.Simtime.t) ->
  seq:int ref ->
  unit ->
  t
(** [capacity] (default 65536) bounds retained events; beyond it the oldest
    are overwritten ({!truncated} turns true, {!dropped} counts). [seq] is
    the run-shared sequence counter. *)

val enabled : t -> bool
val node : t -> string

val set_nid : t -> int -> unit
(** Called by the engine at INIT, once the node-table id is known. *)

val emit : t -> Event.body -> int
(** Record an event under the current cause (or as its own cause if none is
    set); returns its sequence number, or [-1] when disabled. *)

val emit_root : t -> Event.body -> int
(** Record a root event (its own cause) and make it the current cause. *)

val cause : t -> int
(** The current causal context, [-1] when outside any. *)

val set_cause : t -> int -> unit
(** Restore a saved causal context ([-1] to leave it). *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val length : t -> int
val dropped : t -> int
(** Events overwritten after the ring filled. *)

val truncated : t -> bool
val clear : t -> unit
