(** Per-node flight recorder: a bounded ring buffer of events.

    One recorder installs per testbed node (see
    [Vw_core.Testbed.enable_observability]); all recorders of a run share
    one sequence counter, so merging per-node logs by [seq] recovers the
    global order in which events were recorded.

    {b Two sinks.} The default {!Binary} sink encodes each event straight
    into a preallocated [Bytes] ring as a fixed 48-byte [vw-events/2]
    slot ({!Binlog}) — no per-event allocation, which is what makes
    always-on recording affordable at engine speed (see [bench micro]'s
    [obs_ablation]). The legacy {!Typed} sink keeps boxed {!Event.t}s in
    a circular array; it survives as the jsonl-cost reference for that
    ablation. Both sinks share drop-oldest semantics, [dropped]
    accounting, and the causal-id protocol, and both decode back to the
    same typed events via {!events}.

    {b Zero cost when disabled.} {!null} is a permanently-disabled no-op
    sink; the engine guards every emission site with {!enabled}, so an
    uninstrumented run does exactly one immediate boolean test per
    would-be event and never constructs the event payload.

    {b Causal ids.} The engine marks the root of each processing context —
    a packet that matched a filter, or a control frame received off the
    wire — with a root emitter; every event emitted until the context ends
    (via {!set_cause}) carries that root's sequence number as its [cause].
    Cross-node edges are recovered offline by pairing [Control_received]
    with the [Control_sent] carrying an equal payload (see
    [Vw_core.Explain]). *)

type mode = Typed | Binary

type t

val null : t
(** The disabled sink: {!enabled} is false, every emitter is a no-op. *)

val create :
  ?mode:mode ->
  ?capacity:int ->
  ?strings:Strtab.t ->
  node:string ->
  clock:(unit -> Vw_sim.Simtime.t) ->
  seq:int ref ->
  unit ->
  t
(** [mode] (default {!Binary}) selects the sink. [capacity] (default
    16384) bounds retained events; beyond it the oldest are overwritten
    ({!truncated} turns true, {!dropped} counts). The default keeps a
    node's ring at 768 KiB — small enough that steady-state recording
    stays in cache; raising it buys retention at measurable per-event
    cost (see the obs_ablation bench). [seq] is the run-shared
    sequence counter, [strings] the run-shared intern table for the
    binary export header (a private one is created when omitted — fine
    for single-recorder use). *)

val enabled : t -> bool
val mode : t -> mode
val node : t -> string

val sid : t -> int
(** This node's name id in the shared string table. *)

val set_nid : t -> int -> unit
(** Called by the engine at INIT, once the node-table id is known. *)

val emit : t -> Event.body -> int
(** Record an event under the current cause (or as its own cause if none is
    set); returns its sequence number, or [-1] when disabled. In Binary
    mode this generic path flattens the already-built body — the engine
    uses the specialized emitters below instead, which never build one. *)

val emit_root : t -> Event.body -> int
(** Record a root event (its own cause) and make it the current cause. *)

(** {2 Specialized no-allocation emitters}

    One per event kind, taking the payload as plain arguments so the
    Binary hot path goes from engine state to ring bytes without
    constructing an [Event.body]. Field layouts mirror
    [Event.to_fields]; parity tests in test_obs keep them aligned.
    [emit_packet_classified] and [emit_control_received] record roots
    (and set the current cause), matching how the engine opens per-packet
    and per-control processing contexts. *)

val emit_packet_classified : t -> point:Event.point -> fid:int -> int
val emit_counter_changed : t -> cid:int -> value:int -> delta:int -> int
val emit_term_flipped : t -> tid:int -> status:bool -> int
val emit_condition_rose : t -> did:int -> int
val emit_action_fired : t -> did:int -> aid:int -> int
val emit_fault_applied : t -> did:int -> aid:int -> fault:Event.fault_kind -> int
val emit_control_sent : t -> dst_nid:int -> ctl:Event.ctl -> int
val emit_control_received : t -> ctl:Event.ctl -> int
val emit_report_raised : t -> nid:int -> rule:int option -> int

val batch_begin : t -> hint:int -> unit
(** Enter batched emission: read the sim clock once (it cannot advance
    within one callback, so every event in the batch gets the timestamp it
    would have gotten unbatched) and pre-grow the binary ring toward
    [hint] further events, hoisting the per-event grow check. Slot claims
    stay per-event, so the drop-oldest [dropped] accounting is unchanged.
    No-op on a disabled recorder. *)

val batch_end : t -> unit
(** Leave batched emission; subsequent events read the clock again. *)

val cause : t -> int
(** The current causal context, [-1] when outside any. *)

val set_cause : t -> int -> unit
(** Restore a saved causal context ([-1] to leave it). *)

val events : t -> Event.t list
(** Retained events, oldest first — decoded from the ring in Binary
    mode. *)

val append_binary : Buffer.t -> t -> unit
(** Append this recorder's retained events as raw [vw-events/2] slots,
    oldest first. Binary mode blits the (at most two) contiguous ring
    regions wholesale; Typed mode encodes each event through the slow
    path. Callers write the {!Binlog.add_header} first. *)

val length : t -> int
val dropped : t -> int
(** Events overwritten after the ring filled. *)

val truncated : t -> bool
val clear : t -> unit
