(** Interned string table for the binary flight recorder ([vw-events/2]).

    Every string that a binary event record needs (today: testbed node
    names) is interned once per run and referenced from the fixed-layout
    slots by its dense id ({e sid}). One table is shared by all recorders
    of a run — [Vw_core.Testbed.enable_observability] creates it — and its
    contents are written once into the log header, so record slots never
    carry string payloads.

    Ids are assigned in first-intern order and are stable for the life of
    the table; the file format stores entries in id order, so sid [i] on
    disk is simply the [i]-th table entry. Sids are u16 on the wire
    (at most 65536 entries) and entries are length-prefixed with a u16
    (at most 65535 bytes each); {!intern} enforces both bounds. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Return the sid for [s], assigning the next dense id on first sight.
    Raises [Invalid_argument] past 65536 entries or for strings longer
    than 65535 bytes. *)

val get : t -> int -> string
(** The string behind a sid. Raises [Invalid_argument] when out of range. *)

val length : t -> int
val to_list : t -> string list
(** All entries in sid order — what the log header serializes. *)
