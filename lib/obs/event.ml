type point = Ingress | Egress
type fault_kind = Drop | Delay | Reorder | Dup | Modify

type ctl =
  | C_init
  | C_start
  | C_counter_update of { cid : int; value : int }
  | C_term_status of { tid : int; status : bool }
  | C_var_bind of { vid : int }
  | C_report_stop of { nid : int }
  | C_report_error of { nid : int; rule : int }

type body =
  | Packet_classified of { point : point; fid : int }
  | Counter_changed of { cid : int; value : int; delta : int }
  | Term_flipped of { tid : int; status : bool }
  | Condition_rose of { did : int }
  | Action_fired of { did : int; aid : int }
  | Fault_applied of { did : int; aid : int; fault : fault_kind }
  | Control_sent of { dst_nid : int; ctl : ctl }
  | Control_received of { ctl : ctl }
  | Report_raised of { nid : int; rule : int option }

type t = {
  seq : int;
  time : Vw_sim.Simtime.t;
  node : string;
  nid : int;
  cause : int;
  body : body;
}

let kind_name = function
  | Packet_classified _ -> "packet_classified"
  | Counter_changed _ -> "counter_changed"
  | Term_flipped _ -> "term_flipped"
  | Condition_rose _ -> "condition_rose"
  | Action_fired _ -> "action_fired"
  | Fault_applied _ -> "fault_applied"
  | Control_sent _ -> "control_sent"
  | Control_received _ -> "control_received"
  | Report_raised _ -> "report_raised"

let all_kind_names =
  [
    "packet_classified";
    "counter_changed";
    "term_flipped";
    "condition_rose";
    "action_fired";
    "fault_applied";
    "control_sent";
    "control_received";
    "report_raised";
  ]

let point_name = function Ingress -> "ingress" | Egress -> "egress"

let fault_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Reorder -> "reorder"
  | Dup -> "dup"
  | Modify -> "modify"

let ctl_name = function
  | C_init -> "init"
  | C_start -> "start"
  | C_counter_update _ -> "counter_update"
  | C_term_status _ -> "term_status"
  | C_var_bind _ -> "var_bind"
  | C_report_stop _ -> "report_stop"
  | C_report_error _ -> "report_error"

(* Two control events carry "the same message" when their decoded payloads
   agree — how the offline causal stitcher pairs a Control_received with the
   Control_sent that produced it. *)
let ctl_equal (a : ctl) (b : ctl) = a = b

(* --- JSONL serialization (schema "vw-events/1") ---

   One JSON object per line; field set depends on "kind". Strings that
   appear here (node names from FSL scripts, fixed kind tags) contain no
   characters needing escapes beyond the JSON basics, but escape anyway so
   the stream stays parseable whatever a script names its nodes. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_ctl_fields b = function
  | C_init | C_start -> ()
  | C_counter_update { cid; value } ->
      Buffer.add_string b (Printf.sprintf ",\"cid\":%d,\"value\":%d" cid value)
  | C_term_status { tid; status } ->
      Buffer.add_string b (Printf.sprintf ",\"tid\":%d,\"status\":%b" tid status)
  | C_var_bind { vid } -> Buffer.add_string b (Printf.sprintf ",\"vid\":%d" vid)
  | C_report_stop { nid } ->
      Buffer.add_string b (Printf.sprintf ",\"report_nid\":%d" nid)
  | C_report_error { nid; rule } ->
      Buffer.add_string b
        (Printf.sprintf ",\"report_nid\":%d,\"rule\":%d" nid rule)

let to_json e =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"time_ns\":%d,\"node\":\"%s\",\"nid\":%d,\"cause\":%d,\"kind\":\"%s\""
       e.seq e.time (json_escape e.node) e.nid e.cause (kind_name e.body));
  (match e.body with
  | Packet_classified { point; fid } ->
      Buffer.add_string b
        (Printf.sprintf ",\"point\":\"%s\",\"fid\":%d" (point_name point) fid)
  | Counter_changed { cid; value; delta } ->
      Buffer.add_string b
        (Printf.sprintf ",\"cid\":%d,\"value\":%d,\"delta\":%d" cid value delta)
  | Term_flipped { tid; status } ->
      Buffer.add_string b (Printf.sprintf ",\"tid\":%d,\"status\":%b" tid status)
  | Condition_rose { did } -> Buffer.add_string b (Printf.sprintf ",\"did\":%d" did)
  | Action_fired { did; aid } ->
      Buffer.add_string b (Printf.sprintf ",\"did\":%d,\"aid\":%d" did aid)
  | Fault_applied { did; aid; fault } ->
      Buffer.add_string b
        (Printf.sprintf ",\"did\":%d,\"aid\":%d,\"fault\":\"%s\"" did aid
           (fault_name fault))
  | Control_sent { dst_nid; ctl } ->
      Buffer.add_string b
        (Printf.sprintf ",\"dst_nid\":%d,\"ctl\":\"%s\"" dst_nid (ctl_name ctl));
      add_ctl_fields b ctl
  | Control_received { ctl } ->
      Buffer.add_string b (Printf.sprintf ",\"ctl\":\"%s\"" (ctl_name ctl));
      add_ctl_fields b ctl
  | Report_raised { nid; rule } -> (
      Buffer.add_string b (Printf.sprintf ",\"report_nid\":%d" nid);
      match rule with
      | Some r -> Buffer.add_string b (Printf.sprintf ",\"rule\":%d" r)
      | None -> ()));
  Buffer.add_char b '}';
  Buffer.contents b

let pp_body ppf = function
  | Packet_classified { point; fid } ->
      Format.fprintf ppf "packet classified (%s, filter %d)" (point_name point)
        fid
  | Counter_changed { cid; value; delta } ->
      Format.fprintf ppf "counter c%d %s%d -> %d" cid
        (if delta >= 0 then "+" else "")
        delta value
  | Term_flipped { tid; status } ->
      Format.fprintf ppf "term t%d flipped to %b" tid status
  | Condition_rose { did } -> Format.fprintf ppf "condition d%d rose" did
  | Action_fired { did; aid } ->
      Format.fprintf ppf "action a%d fired (condition d%d)" aid did
  | Fault_applied { did; aid; fault } ->
      Format.fprintf ppf "fault %s applied (action a%d, condition d%d)"
        (fault_name fault) aid did
  | Control_sent { dst_nid; ctl } ->
      Format.fprintf ppf "control %s sent to n%d" (ctl_name ctl) dst_nid
  | Control_received { ctl } ->
      Format.fprintf ppf "control %s received" (ctl_name ctl)
  | Report_raised { nid; rule } -> (
      match rule with
      | Some r -> Format.fprintf ppf "FLAG_ERROR report (n%d, rule %d)" nid r
      | None -> Format.fprintf ppf "STOP report (n%d)" nid)

let pp ppf e =
  Format.fprintf ppf "#%-5d %a %-8s %a" e.seq Vw_sim.Simtime.pp e.time e.node
    pp_body e.body
