type point = Ingress | Egress
type fault_kind = Drop | Delay | Reorder | Dup | Modify

type ctl =
  | C_init
  | C_start
  | C_counter_update of { cid : int; value : int }
  | C_term_status of { tid : int; status : bool }
  | C_var_bind of { vid : int }
  | C_report_stop of { nid : int }
  | C_report_error of { nid : int; rule : int }

type body =
  | Packet_classified of { point : point; fid : int }
  | Counter_changed of { cid : int; value : int; delta : int }
  | Term_flipped of { tid : int; status : bool }
  | Condition_rose of { did : int }
  | Action_fired of { did : int; aid : int }
  | Fault_applied of { did : int; aid : int; fault : fault_kind }
  | Control_sent of { dst_nid : int; ctl : ctl }
  | Control_received of { ctl : ctl }
  | Report_raised of { nid : int; rule : int option }
  | Expect_checked of { xid : int; ok : bool }

type t = {
  seq : int;
  time : Vw_sim.Simtime.t;
  node : string;
  nid : int;
  cause : int;
  body : body;
}

let kind_name = function
  | Packet_classified _ -> "packet_classified"
  | Counter_changed _ -> "counter_changed"
  | Term_flipped _ -> "term_flipped"
  | Condition_rose _ -> "condition_rose"
  | Action_fired _ -> "action_fired"
  | Fault_applied _ -> "fault_applied"
  | Control_sent _ -> "control_sent"
  | Control_received _ -> "control_received"
  | Report_raised _ -> "report_raised"
  | Expect_checked _ -> "expect_checked"

let all_kind_names =
  [
    "packet_classified";
    "counter_changed";
    "term_flipped";
    "condition_rose";
    "action_fired";
    "fault_applied";
    "control_sent";
    "control_received";
    "report_raised";
    "expect_checked";
  ]

let point_name = function Ingress -> "ingress" | Egress -> "egress"

let fault_name = function
  | Drop -> "drop"
  | Delay -> "delay"
  | Reorder -> "reorder"
  | Dup -> "dup"
  | Modify -> "modify"

let ctl_name = function
  | C_init -> "init"
  | C_start -> "start"
  | C_counter_update _ -> "counter_update"
  | C_term_status _ -> "term_status"
  | C_var_bind _ -> "var_bind"
  | C_report_stop _ -> "report_stop"
  | C_report_error _ -> "report_error"

(* Two control events carry "the same message" when their decoded payloads
   agree — how the offline causal stitcher pairs a Control_received with the
   Control_sent that produced it. *)
let ctl_equal (a : ctl) (b : ctl) = a = b

(* --- Fixed-layout field codec (schema "vw-events/2") ---

   Every body flattens to five integers: a kind code, a small enum byte
   [aux] (hook point / term status / fault kind / ctl tag / rule-present),
   a 32-bit id [a] and two full-width payloads [b]/[c] (counter values and
   deltas are arbitrary ints). The mapping is total and injective so that
   decode (of_fields) after encode (to_fields) is the identity — the
   qcheck property in test_report keeps that honest. *)

let kind_code = function
  | Packet_classified _ -> 0
  | Counter_changed _ -> 1
  | Term_flipped _ -> 2
  | Condition_rose _ -> 3
  | Action_fired _ -> 4
  | Fault_applied _ -> 5
  | Control_sent _ -> 6
  | Control_received _ -> 7
  | Report_raised _ -> 8
  | Expect_checked _ -> 9

let fault_code = function
  | Drop -> 0
  | Delay -> 1
  | Reorder -> 2
  | Dup -> 3
  | Modify -> 4

let ctl_to_fields = function
  | C_init -> (0, 0, 0)
  | C_start -> (1, 0, 0)
  | C_counter_update { cid; value } -> (2, cid, value)
  | C_term_status { tid; status } -> (3, tid, if status then 1 else 0)
  | C_var_bind { vid } -> (4, vid, 0)
  | C_report_stop { nid } -> (5, nid, 0)
  | C_report_error { nid; rule } -> (6, nid, rule)

let ctl_of_fields ~tag ~b ~c =
  match tag with
  | 0 -> Ok C_init
  | 1 -> Ok C_start
  | 2 -> Ok (C_counter_update { cid = b; value = c })
  | 3 when c = 0 || c = 1 -> Ok (C_term_status { tid = b; status = c = 1 })
  | 3 -> Error (Printf.sprintf "term_status with non-boolean status %d" c)
  | 4 -> Ok (C_var_bind { vid = b })
  | 5 -> Ok (C_report_stop { nid = b })
  | 6 -> Ok (C_report_error { nid = b; rule = c })
  | n -> Error (Printf.sprintf "unknown ctl tag %d" n)

let to_fields = function
  | Packet_classified { point; fid } ->
      (0, (match point with Ingress -> 0 | Egress -> 1), fid, 0, 0)
  | Counter_changed { cid; value; delta } -> (1, 0, cid, delta, value)
  | Term_flipped { tid; status } -> (2, (if status then 1 else 0), tid, 0, 0)
  | Condition_rose { did } -> (3, 0, did, 0, 0)
  | Action_fired { did; aid } -> (4, 0, did, aid, 0)
  | Fault_applied { did; aid; fault } -> (5, fault_code fault, did, aid, 0)
  | Control_sent { dst_nid; ctl } ->
      let tag, b, c = ctl_to_fields ctl in
      (6, tag, dst_nid, b, c)
  | Control_received { ctl } ->
      let tag, b, c = ctl_to_fields ctl in
      (7, tag, 0, b, c)
  | Report_raised { nid; rule = None } -> (8, 0, nid, 0, 0)
  | Report_raised { nid; rule = Some r } -> (8, 1, nid, r, 0)
  | Expect_checked { xid; ok } -> (9, (if ok then 1 else 0), xid, 0, 0)

let of_fields ~kind ~aux ~a ~b ~c =
  let bad what v = Error (Printf.sprintf "%s %d out of range" what v) in
  match kind with
  | 0 -> (
      match aux with
      | 0 -> Ok (Packet_classified { point = Ingress; fid = a })
      | 1 -> Ok (Packet_classified { point = Egress; fid = a })
      | _ -> bad "hook point" aux)
  | 1 -> Ok (Counter_changed { cid = a; value = c; delta = b })
  | 2 ->
      if aux = 0 || aux = 1 then Ok (Term_flipped { tid = a; status = aux = 1 })
      else bad "term status" aux
  | 3 -> Ok (Condition_rose { did = a })
  | 4 -> Ok (Action_fired { did = a; aid = b })
  | 5 -> (
      let fault =
        match aux with
        | 0 -> Some Drop
        | 1 -> Some Delay
        | 2 -> Some Reorder
        | 3 -> Some Dup
        | 4 -> Some Modify
        | _ -> None
      in
      match fault with
      | Some fault -> Ok (Fault_applied { did = a; aid = b; fault })
      | None -> bad "fault kind" aux)
  | 6 ->
      Result.map
        (fun ctl -> Control_sent { dst_nid = a; ctl })
        (ctl_of_fields ~tag:aux ~b ~c)
  | 7 ->
      Result.map (fun ctl -> Control_received { ctl }) (ctl_of_fields ~tag:aux ~b ~c)
  | 8 -> (
      match aux with
      | 0 -> Ok (Report_raised { nid = a; rule = None })
      | 1 -> Ok (Report_raised { nid = a; rule = Some b })
      | _ -> bad "rule-present flag" aux)
  | 9 ->
      if aux = 0 || aux = 1 then Ok (Expect_checked { xid = a; ok = aux = 1 })
      else bad "expect-ok flag" aux
  | n -> bad "event kind" n

(* --- JSONL serialization (schema "vw-events/1") ---

   One JSON object per line; field set depends on "kind". Strings that
   appear here (node names from FSL scripts, fixed kind tags) contain no
   characters needing escapes beyond the JSON basics, but escape anyway so
   the stream stays parseable whatever a script names its nodes. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_ctl_fields b = function
  | C_init | C_start -> ()
  | C_counter_update { cid; value } ->
      Buffer.add_string b (Printf.sprintf ",\"cid\":%d,\"value\":%d" cid value)
  | C_term_status { tid; status } ->
      Buffer.add_string b (Printf.sprintf ",\"tid\":%d,\"status\":%b" tid status)
  | C_var_bind { vid } -> Buffer.add_string b (Printf.sprintf ",\"vid\":%d" vid)
  | C_report_stop { nid } ->
      Buffer.add_string b (Printf.sprintf ",\"report_nid\":%d" nid)
  | C_report_error { nid; rule } ->
      Buffer.add_string b
        (Printf.sprintf ",\"report_nid\":%d,\"rule\":%d" nid rule)

let to_json e =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf "{\"seq\":%d,\"time_ns\":%d,\"node\":\"%s\",\"nid\":%d,\"cause\":%d,\"kind\":\"%s\""
       e.seq e.time (json_escape e.node) e.nid e.cause (kind_name e.body));
  (match e.body with
  | Packet_classified { point; fid } ->
      Buffer.add_string b
        (Printf.sprintf ",\"point\":\"%s\",\"fid\":%d" (point_name point) fid)
  | Counter_changed { cid; value; delta } ->
      Buffer.add_string b
        (Printf.sprintf ",\"cid\":%d,\"value\":%d,\"delta\":%d" cid value delta)
  | Term_flipped { tid; status } ->
      Buffer.add_string b (Printf.sprintf ",\"tid\":%d,\"status\":%b" tid status)
  | Condition_rose { did } -> Buffer.add_string b (Printf.sprintf ",\"did\":%d" did)
  | Action_fired { did; aid } ->
      Buffer.add_string b (Printf.sprintf ",\"did\":%d,\"aid\":%d" did aid)
  | Fault_applied { did; aid; fault } ->
      Buffer.add_string b
        (Printf.sprintf ",\"did\":%d,\"aid\":%d,\"fault\":\"%s\"" did aid
           (fault_name fault))
  | Control_sent { dst_nid; ctl } ->
      Buffer.add_string b
        (Printf.sprintf ",\"dst_nid\":%d,\"ctl\":\"%s\"" dst_nid (ctl_name ctl));
      add_ctl_fields b ctl
  | Control_received { ctl } ->
      Buffer.add_string b (Printf.sprintf ",\"ctl\":\"%s\"" (ctl_name ctl));
      add_ctl_fields b ctl
  | Report_raised { nid; rule } -> (
      Buffer.add_string b (Printf.sprintf ",\"report_nid\":%d" nid);
      match rule with
      | Some r -> Buffer.add_string b (Printf.sprintf ",\"rule\":%d" r)
      | None -> ())
  | Expect_checked { xid; ok } ->
      Buffer.add_string b (Printf.sprintf ",\"xid\":%d,\"ok\":%b" xid ok));
  Buffer.add_char b '}';
  Buffer.contents b

let pp_body ppf = function
  | Packet_classified { point; fid } ->
      Format.fprintf ppf "packet classified (%s, filter %d)" (point_name point)
        fid
  | Counter_changed { cid; value; delta } ->
      Format.fprintf ppf "counter c%d %s%d -> %d" cid
        (if delta >= 0 then "+" else "")
        delta value
  | Term_flipped { tid; status } ->
      Format.fprintf ppf "term t%d flipped to %b" tid status
  | Condition_rose { did } -> Format.fprintf ppf "condition d%d rose" did
  | Action_fired { did; aid } ->
      Format.fprintf ppf "action a%d fired (condition d%d)" aid did
  | Fault_applied { did; aid; fault } ->
      Format.fprintf ppf "fault %s applied (action a%d, condition d%d)"
        (fault_name fault) aid did
  | Control_sent { dst_nid; ctl } ->
      Format.fprintf ppf "control %s sent to n%d" (ctl_name ctl) dst_nid
  | Control_received { ctl } ->
      Format.fprintf ppf "control %s received" (ctl_name ctl)
  | Report_raised { nid; rule } -> (
      match rule with
      | Some r -> Format.fprintf ppf "FLAG_ERROR report (n%d, rule %d)" nid r
      | None -> Format.fprintf ppf "STOP report (n%d)" nid)
  | Expect_checked { xid; ok } ->
      Format.fprintf ppf "expectation %d %s" xid
        (if ok then "passed" else "failed")

let pp ppf e =
  Format.fprintf ppf "#%-5d %a %-8s %a" e.seq Vw_sim.Simtime.pp e.time e.node
    pp_body e.body
