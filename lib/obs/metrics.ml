type counter = { c_name : string; c_on : bool; mutable c_value : int }

type histogram = {
  h_name : string;
  h_on : bool;
  bounds : int array; (* ascending inclusive upper bounds *)
  counts : int array; (* length bounds + 1; last = overflow *)
  mutable h_total : int;
  mutable h_sum : int;
  mutable h_max : int;
}

type metric = Counter of counter | Histogram of histogram

type t = {
  on : bool;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, newest first *)
}

let create () = { on = true; tbl = Hashtbl.create 16; order = [] }
let null = { on = false; tbl = Hashtbl.create 1; order = [] }
let enabled t = t.on

let default_buckets = [| 1; 2; 4; 8; 16; 32; 64; 128; 256 |]

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is a histogram" name)
  | None ->
      let c = { c_name = name; c_on = t.on; c_value = 0 } in
      if t.on then begin
        Hashtbl.replace t.tbl name (Counter c);
        t.order <- name :: t.order
      end;
      c

let histogram t ?(buckets = default_buckets) name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is a counter" name)
  | None ->
      let bounds = Array.copy buckets in
      Array.sort compare bounds;
      let h =
        {
          h_name = name;
          h_on = t.on;
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_total = 0;
          h_sum = 0;
          h_max = 0;
        }
      in
      if t.on then begin
        Hashtbl.replace t.tbl name (Histogram h);
        t.order <- name :: t.order
      end;
      h

let incr ?(by = 1) c = if c.c_on then c.c_value <- c.c_value + by
let set c v = if c.c_on then c.c_value <- v
let value c = c.c_value

let bucket_index bounds v =
  (* first bound >= v; linear — bucket arrays are small by construction *)
  let n = Array.length bounds in
  let rec go i = if i = n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if h.h_on then begin
    h.counts.(bucket_index h.bounds v) <- h.counts.(bucket_index h.bounds v) + 1;
    h.h_total <- h.h_total + 1;
    h.h_sum <- h.h_sum + v;
    if v > h.h_max then h.h_max <- v
  end

let total h = h.h_total
let sum h = h.h_sum
let max_observed h = h.h_max
let bucket_counts h = (Array.copy h.bounds, Array.copy h.counts)

let registered t =
  List.rev_map (fun name -> (name, Hashtbl.find t.tbl name)) t.order

let counters t =
  List.filter_map
    (function name, Counter c -> Some (name, c.c_value) | _ -> None)
    (registered t)

let histograms t =
  List.filter_map
    (function name, Histogram h -> Some (name, h) | _ -> None)
    (registered t)

(* --- JSON (schema "vw-metrics/1") --- *)

let add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_int_array b a =
  Buffer.add_char b '[';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    a;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"vw-metrics/1\",\n  \"counters\": {";
  let cs = counters t in
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    ";
      add_json_string b name;
      Buffer.add_string b (Printf.sprintf ": %d" v))
    cs;
  Buffer.add_string b (if cs = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"histograms\": {";
  let hs = histograms t in
  List.iteri
    (fun i (name, h) ->
      Buffer.add_string b (if i = 0 then "\n" else ",\n");
      Buffer.add_string b "    ";
      add_json_string b name;
      Buffer.add_string b ": { \"bounds\": ";
      add_int_array b h.bounds;
      Buffer.add_string b ", \"counts\": ";
      add_int_array b h.counts;
      Buffer.add_string b
        (Printf.sprintf ", \"total\": %d, \"sum\": %d, \"max\": %d }" h.h_total
           h.h_sum h.h_max))
    hs;
  Buffer.add_string b (if hs = [] then "}\n}\n" else "\n  }\n}\n");
  Buffer.contents b

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-40s %10d@," name v)
    (counters t);
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%-40s total %d, sum %d, max %d@," name h.h_total
        h.h_sum h.h_max;
      Array.iteri
        (fun i c ->
          if c > 0 then
            if i < Array.length h.bounds then
              Format.fprintf ppf "  <= %-6d %10d@," h.bounds.(i) c
            else Format.fprintf ppf "  >  %-6d %10d@," h.bounds.(i - 1) c)
        h.counts)
    (histograms t);
  Format.pp_close_box ppf ()
