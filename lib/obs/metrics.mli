(** Metrics registry: named monotonic counters and fixed-bucket histograms.

    Subsumes the engine's aggregate [Fie.stats] (exported into a registry as
    counters, see [Fie.export_metrics]) and extends it with the
    distributions a single total cannot capture: cascade depth, filter
    candidates scanned per packet, DELAY/REORDER queue occupancy,
    control-frame fan-out per cascade.

    Handles ({!counter}, {!histogram}) are obtained once and updated with
    plain field writes; a handle from the {!null} registry is a no-op, so
    instrumentation sites need no branching of their own. [to_json] renders
    the stable [vw-metrics/1] schema written by [vwctl run --metrics]. *)

type t
type counter
type histogram

val create : unit -> t
val null : t
(** Disabled registry: registration returns inert handles. *)

val enabled : t -> bool

val default_buckets : int array
(** Powers of two, 1 … 256. *)

val counter : t -> string -> counter
(** Register (or fetch) the counter [name].
    @raise Invalid_argument if [name] is a histogram. *)

val histogram : t -> ?buckets:int array -> string -> histogram
(** Register (or fetch) the histogram [name]. [buckets] are inclusive upper
    bounds (sorted internally); one overflow bucket is appended.
    @raise Invalid_argument if [name] is a counter. *)

val incr : ?by:int -> counter -> unit
val set : counter -> int -> unit
val value : counter -> int

val observe : histogram -> int -> unit
val total : histogram -> int
val sum : histogram -> int
val max_observed : histogram -> int

val bucket_counts : histogram -> int array * int array
(** [(bounds, counts)]; [counts] has one trailing overflow bucket. *)

val counters : t -> (string * int) list
(** Registration order. *)

val histograms : t -> (string * histogram) list

val to_json : t -> string
(** Schema [vw-metrics/1]; ends with a newline. *)

val pp : Format.formatter -> t -> unit
