type t = {
  enabled : bool;
  capacity : int;
  node : string;
  mutable nid : int;
  clock : unit -> Vw_sim.Simtime.t;
  seq : int ref; (* shared across every recorder of one run *)
  mutable buf : Event.t option array; (* circular; grows up to capacity *)
  mutable start : int; (* index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable cause : int;
}

let null =
  {
    enabled = false;
    capacity = 0;
    node = "";
    nid = -1;
    clock = (fun () -> Vw_sim.Simtime.zero);
    seq = ref 0;
    buf = [||];
    start = 0;
    len = 0;
    dropped = 0;
    cause = -1;
  }

let create ?(capacity = 65536) ~node ~clock ~seq () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  {
    enabled = true;
    capacity;
    node;
    nid = -1;
    clock;
    seq;
    buf = [||];
    start = 0;
    len = 0;
    dropped = 0;
    cause = -1;
  }

let enabled t = t.enabled
let node t = t.node
let set_nid t nid = t.nid <- nid
let cause t = t.cause
let set_cause t c = t.cause <- c

let push t e =
  if t.len < t.capacity then begin
    if t.len = Array.length t.buf then begin
      (* grow geometrically toward capacity; start is 0 until full *)
      let n = min t.capacity (max 64 (2 * Array.length t.buf)) in
      let buf = Array.make n None in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    t.buf.((t.start + t.len) mod Array.length t.buf) <- Some e;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest — the flight recorder keeps the tail *)
    t.buf.(t.start) <- Some e;
    t.start <- (t.start + 1) mod Array.length t.buf;
    t.dropped <- t.dropped + 1
  end

let emit t body =
  if not t.enabled then -1
  else begin
    let seq = !(t.seq) in
    t.seq := seq + 1;
    let cause = if t.cause >= 0 then t.cause else seq in
    push t
      { Event.seq; time = t.clock (); node = t.node; nid = t.nid; cause; body };
    seq
  end

let emit_root t body =
  if not t.enabled then -1
  else begin
    let seq = !(t.seq) in
    t.seq := seq + 1;
    push t
      {
        Event.seq;
        time = t.clock ();
        node = t.node;
        nid = t.nid;
        cause = seq;
        body;
      };
    t.cause <- seq;
    seq
  end

let events t =
  List.init t.len (fun i ->
      match t.buf.((t.start + i) mod Array.length t.buf) with
      | Some e -> e
      | None -> assert false)

let length t = t.len
let dropped t = t.dropped
let truncated t = t.dropped > 0

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.cause <- -1
