type mode = Typed | Binary

type t = {
  enabled : bool;
  mode : mode;
  capacity : int;
  node : string;
  sid : int; (* node-name id in the run-shared string table *)
  mutable nid : int;
  clock : unit -> Vw_sim.Simtime.t;
  seq : int ref; (* shared across every recorder of one run *)
  (* Typed sink: circular array of boxed events (the legacy slow path,
     kept as the jsonl-cost reference for the bench ablation). *)
  mutable buf : Event.t option array;
  (* Binary sink: preallocated ring of 48-byte vw-events/2 slots; the
     hot path writes straight into it with no per-event allocation. *)
  mutable ring : Bytes.t;
  mutable slots : int; (* Bytes.length ring / Binlog.slot_bytes, cached *)
  mutable start : int; (* slot/array index of the oldest retained event *)
  mutable len : int;
  mutable dropped : int;
  mutable cause : int;
  mutable batch_time : int;
      (* timestamp cached by batch_begin (-1 = not in a batch): within one
         batch the sim clock cannot advance, so one clock() call covers
         every event the batch emits *)
}

let null =
  {
    enabled = false;
    mode = Binary;
    capacity = 0;
    node = "";
    sid = 0;
    nid = -1;
    clock = (fun () -> Vw_sim.Simtime.zero);
    seq = ref 0;
    buf = [||];
    ring = Bytes.empty;
    slots = 0;
    start = 0;
    len = 0;
    dropped = 0;
    cause = -1;
    batch_time = -1;
  }

let create ?(mode = Binary) ?(capacity = 16384) ?strings ~node ~clock ~seq () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  let strings =
    match strings with Some s -> s | None -> Strtab.create ()
  in
  {
    enabled = true;
    mode;
    capacity;
    node;
    sid = Strtab.intern strings node;
    nid = -1;
    clock;
    seq;
    buf = [||];
    ring = Bytes.empty;
    slots = 0;
    start = 0;
    len = 0;
    dropped = 0;
    cause = -1;
    batch_time = -1;
  }

let enabled t = t.enabled
let mode t = t.mode
let node t = t.node
let sid t = t.sid
let set_nid t nid = t.nid <- nid
let cause t = t.cause
let set_cause t c = t.cause <- c

(* --- typed sink --- *)

let push t e =
  if t.len < t.capacity then begin
    if t.len = Array.length t.buf then begin
      (* grow geometrically toward capacity; start is 0 until full *)
      let n = min t.capacity (max 64 (2 * Array.length t.buf)) in
      let buf = Array.make n None in
      Array.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end;
    t.buf.((t.start + t.len) mod Array.length t.buf) <- Some e;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest — the flight recorder keeps the tail *)
    t.buf.(t.start) <- Some e;
    t.start <- (t.start + 1) mod Array.length t.buf;
    t.dropped <- t.dropped + 1
  end

let typed_emit t ~root body =
  let seq = !(t.seq) in
  t.seq := seq + 1;
  let cause =
    if root then begin
      t.cause <- seq;
      seq
    end
    else if t.cause >= 0 then t.cause
    else seq
  in
  let time = if t.batch_time >= 0 then t.batch_time else t.clock () in
  push t { Event.seq; time; node = t.node; nid = t.nid; cause; body };
  seq

(* --- binary sink --- *)

(* Grow the ring geometrically toward capacity. Cold: runs O(log capacity)
   times per recorder lifetime, so it stays out of line while the claim
   logic itself is open-coded in [binary_emit]. *)
let grow_ring t =
  let n = min t.capacity (max 64 (2 * t.slots)) in
  let ring = Bytes.make (n * Binlog.slot_bytes) '\000' in
  Bytes.blit t.ring 0 ring 0 (t.len * Binlog.slot_bytes);
  t.ring <- ring;
  t.slots <- n

(* [Binlog.encode_slot]'s six 64-bit stores, open-coded here because the
   classic compiler will not inline across the module boundary and the
   call (11 arguments) costs as much as the stores themselves. The slot
   layout is defined once in Binlog; the round-trip and emitter-parity
   tests in test_obs keep this copy honest. *)
external set_64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

let binary_emit t ~root ~kind ~aux ~a ~b ~c =
  let seq = !(t.seq) in
  t.seq := seq + 1;
  let cause =
    if root then begin
      t.cause <- seq;
      seq
    end
    else if t.cause >= 0 then t.cause
    else seq
  in
  (* claim the next slot: grow toward capacity, then drop-oldest — the
     same semantics and [dropped] accounting as the typed sink *)
  let off =
    if t.len < t.capacity then begin
      if t.len = t.slots then grow_ring t;
      let i = t.start + t.len in
      let i = if i >= t.slots then i - t.slots else i in
      t.len <- t.len + 1;
      i * Binlog.slot_bytes
    end
    else begin
      let i = t.start in
      t.start <- (if t.start + 1 >= t.slots then 0 else t.start + 1);
      t.dropped <- t.dropped + 1;
      i * Binlog.slot_bytes
    end
  in
  let ring = t.ring in
  set_64u ring (off + Binlog.o_seq)
    (Int64.logor (Int64.of_int seq) (Int64.shift_left (Int64.of_int t.sid) 48));
  set_64u ring (off + Binlog.o_time)
    (Int64.of_int (if t.batch_time >= 0 then t.batch_time else t.clock ()));
  set_64u ring (off + Binlog.o_cause)
    (Int64.logor (Int64.of_int cause)
       (Int64.shift_left (Int64.of_int (t.nid land 0xffff)) 48));
  set_64u ring (off + Binlog.o_kind)
    (Int64.of_int (kind lor (aux lsl 8) lor ((a land 0xffffffff) lsl 16)));
  set_64u ring (off + Binlog.o_b) (Int64.of_int b);
  set_64u ring (off + Binlog.o_c) (Int64.of_int c);
  seq

(* --- batched emission ---

   The batch processor brackets a batch with [batch_begin]/[batch_end]:
   the sim clock is read once (it cannot advance within one callback, so
   every event in the batch carries the same timestamp it would have
   carried unbatched) and the binary ring is pre-grown to cover the
   expected emission count, taking the grow check off the per-event claim.
   The claim itself stays per-event so the drop-oldest accounting is
   byte-identical to unbatched emission (parity-tested in test_obs). *)

let batch_begin t ~hint =
  if t.enabled then begin
    t.batch_time <- t.clock ();
    if t.mode = Binary then begin
      let want = min t.capacity (t.len + max 0 hint) in
      while t.slots < want do
        grow_ring t
      done
    end
  end

let batch_end t = t.batch_time <- -1

(* --- generic emitters (compat path; used by tests and cold sites) --- *)

let emit t body =
  if not t.enabled then -1
  else
    match t.mode with
    | Typed -> typed_emit t ~root:false body
    | Binary ->
        let kind, aux, a, b, c = Event.to_fields body in
        binary_emit t ~root:false ~kind ~aux ~a ~b ~c

let emit_root t body =
  if not t.enabled then -1
  else
    match t.mode with
    | Typed -> typed_emit t ~root:true body
    | Binary ->
        let kind, aux, a, b, c = Event.to_fields body in
        binary_emit t ~root:true ~kind ~aux ~a ~b ~c

(* --- specialized no-allocation emitters (engine hot path) ---

   Field layouts must mirror Event.to_fields exactly; the parity tests in
   test_obs compare each specialized emitter against the generic [emit]
   in both modes. *)

let emit_packet_classified t ~point ~fid =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary ->
        let aux = match point with Event.Ingress -> 0 | Event.Egress -> 1 in
        binary_emit t ~root:true ~kind:0 ~aux ~a:fid ~b:0 ~c:0
    | Typed -> typed_emit t ~root:true (Event.Packet_classified { point; fid })

let emit_counter_changed t ~cid ~value ~delta =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary -> binary_emit t ~root:false ~kind:1 ~aux:0 ~a:cid ~b:delta ~c:value
    | Typed ->
        typed_emit t ~root:false (Event.Counter_changed { cid; value; delta })

let emit_term_flipped t ~tid ~status =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary ->
        binary_emit t ~root:false ~kind:2
          ~aux:(if status then 1 else 0)
          ~a:tid ~b:0 ~c:0
    | Typed -> typed_emit t ~root:false (Event.Term_flipped { tid; status })

let emit_condition_rose t ~did =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary -> binary_emit t ~root:false ~kind:3 ~aux:0 ~a:did ~b:0 ~c:0
    | Typed -> typed_emit t ~root:false (Event.Condition_rose { did })

let emit_action_fired t ~did ~aid =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary -> binary_emit t ~root:false ~kind:4 ~aux:0 ~a:did ~b:aid ~c:0
    | Typed -> typed_emit t ~root:false (Event.Action_fired { did; aid })

let emit_fault_applied t ~did ~aid ~fault =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary ->
        let aux =
          match fault with
          | Event.Drop -> 0
          | Event.Delay -> 1
          | Event.Reorder -> 2
          | Event.Dup -> 3
          | Event.Modify -> 4
        in
        binary_emit t ~root:false ~kind:5 ~aux ~a:did ~b:aid ~c:0
    | Typed -> typed_emit t ~root:false (Event.Fault_applied { did; aid; fault })

let emit_control_sent t ~dst_nid ~ctl =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary ->
        let tag, b, c = Event.ctl_to_fields ctl in
        binary_emit t ~root:false ~kind:6 ~aux:tag ~a:dst_nid ~b ~c
    | Typed -> typed_emit t ~root:false (Event.Control_sent { dst_nid; ctl })

let emit_control_received t ~ctl =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary ->
        let tag, b, c = Event.ctl_to_fields ctl in
        binary_emit t ~root:true ~kind:7 ~aux:tag ~a:0 ~b ~c
    | Typed -> typed_emit t ~root:true (Event.Control_received { ctl })

let emit_report_raised t ~nid ~rule =
  if not t.enabled then -1
  else
    match t.mode with
    | Binary -> (
        match rule with
        | None -> binary_emit t ~root:false ~kind:8 ~aux:0 ~a:nid ~b:0 ~c:0
        | Some r -> binary_emit t ~root:false ~kind:8 ~aux:1 ~a:nid ~b:r ~c:0)
    | Typed -> typed_emit t ~root:false (Event.Report_raised { nid; rule })

(* --- readout --- *)

let events t =
  match t.mode with
  | Typed ->
      List.init t.len (fun i ->
          match t.buf.((t.start + i) mod Array.length t.buf) with
          | Some e -> e
          | None -> assert false)
  | Binary ->
      List.init t.len (fun i ->
          let idx = t.start + i in
          let idx = if idx >= t.slots then idx - t.slots else idx in
          match
            Binlog.decode_slot t.ring ~off:(idx * Binlog.slot_bytes)
              ~node:t.node
          with
          | Ok e -> e
          | Error m -> failwith ("Recorder.events: corrupt slot: " ^ m))

let append_binary buf t =
  let sb = Binlog.slot_bytes in
  match t.mode with
  | Binary ->
      (* at most two contiguous regions, blitted wholesale *)
      if t.start + t.len <= t.slots then
        Buffer.add_subbytes buf t.ring (t.start * sb) (t.len * sb)
      else begin
        let first = t.slots - t.start in
        Buffer.add_subbytes buf t.ring (t.start * sb) (first * sb);
        Buffer.add_subbytes buf t.ring 0 ((t.len - first) * sb)
      end
  | Typed ->
      List.iter (fun e -> Binlog.add_slot_of_event buf ~sid:t.sid e) (events t)

let length t = t.len
let dropped t = t.dropped
let truncated t = t.dropped > 0

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0;
  t.cause <- -1;
  t.batch_time <- -1
