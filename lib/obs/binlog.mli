(** Binary flight-recorder log codec (schema [vw-events/2]).

    Fixed-layout 48-byte little-endian record slots — no varints, no
    per-record strings — plus a file header that carries the run's
    {!Strtab} so slots reference node names by u16 sid. The layout (see
    docs/OBSERVABILITY.md for the byte-level table):

    {v
    off  size  field
      0   u48  seq    run-global sequence number
      6   u16  sid    node-name id in the header string table
      8   i64  time   simulation time, ns
     16   u48  cause  seq of the causal root
     22   i16  nid    node-table id (-1 before INIT)
     24    u8  kind   Event.kind_code (0..9)
     25    u8  aux    enum byte (point/status/fault/ctl tag/rule flag)
     26   i32  a      primary id
     30   i64  b      payload
     38   i64  c      payload
     46   2B   reserved, zero
    v}

    Signed fields hold any OCaml int (63-bit two's complement) exactly;
    [seq]/[cause] are unsigned 48-bit. Encoding never allocates — the
    recorder calls {!encode_slot} straight into its preallocated ring. *)

val magic : string
(** The 6-byte file magic, ["VWEV2\x00"]. *)

val slot_bytes : int
(** Record slot width: 48. *)

val o_seq : int
val o_sid : int
val o_time : int
val o_cause : int
val o_nid : int
val o_kind : int
val o_aux : int
val o_a : int
val o_b : int
val o_c : int
(** Field byte offsets within a slot, per the table above. Exposed for
    the recorder's open-coded hot-path encoder and for layout tests. *)

val is_binary : string -> bool
(** True when [s] starts with the vw-events/2 magic — how [Events_io]
    sniffs binary logs apart from JSONL. *)

val encode_slot :
  Bytes.t ->
  off:int ->
  seq:int ->
  sid:int ->
  time:int ->
  cause:int ->
  nid:int ->
  kind:int ->
  aux:int ->
  a:int ->
  b:int ->
  c:int ->
  unit
(** Write one record slot at [off]. No bounds or range checks: callers
    guarantee [off + slot_bytes <= Bytes.length buf] and field ranges
    (ids fit i32, seq/cause fit u48, nid fits i16). *)

val decode_slot : Bytes.t -> off:int -> node:string -> (Event.t, string) result
(** Read one record slot back into a typed event, with the node name
    already resolved from the slot's sid by the caller. *)

val slot_sid : Bytes.t -> off:int -> int
(** The sid field of the slot at [off]. *)

val add_slot_of_event : Buffer.t -> sid:int -> Event.t -> unit
(** Append one typed event as a record slot — the slow-path encoder used
    when exporting a [Typed]-mode recorder. *)

type meta = { scenario : string; recorded : int; dropped : int }
(** Header fields mirroring the vw-events/1 JSONL header line. *)

val add_header :
  Buffer.t ->
  scenario:string ->
  recorded:int ->
  dropped:int ->
  strings:string list ->
  records:int ->
  unit
(** Append the file header: magic, fixed fields, scenario name, and the
    string table in sid order. [records] must equal the number of slots
    appended after it. *)

val of_string : string -> (meta * Event.t list, string) result
(** Decode a complete vw-events/2 file. Events are sorted by [seq]
    (per-node ring dumps are concatenated on disk). Errors name the
    offending record and field. *)

val of_events :
  scenario:string -> recorded:int -> dropped:int -> Event.t list -> string
(** Serialize typed events to a complete vw-events/2 file, interning node
    names in first-seen order — convenience for tests and oracles. *)
