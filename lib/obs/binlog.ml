(* vw-events/2: fixed 48-byte little-endian record slots plus a small file
   header carrying the interned string table. All multi-byte fields are
   written with manual per-byte stores — [Bytes.set_int64_le] and friends
   take boxed [Int64]s, which would put an allocation back on the hot path
   the whole format exists to remove. Signed fields use arithmetic shifts
   on the way out and explicit sign extension on the way in, so any OCaml
   int (63-bit two's complement) round-trips exactly. *)

let magic = "VWEV2\x00"
let slot_bytes = 48

(* Slot offsets. Bytes 46..47 are reserved and always zero. *)
let o_seq = 0 (* u48  run-global sequence number *)
let o_sid = 6 (* u16  node-name sid in the string table *)
let o_time = 8 (* i64  simulation time, ns *)
let o_cause = 16 (* u48  seq of the causal root *)
let o_nid = 22 (* i16  node-table id; -1 before INIT *)
let o_kind = 24 (* u8   Event.kind_code *)
let o_aux = 25 (* u8   enum byte, meaning depends on kind *)
let o_a = 26 (* i32  primary id (fid/cid/tid/did/nid) *)
let o_b = 30 (* i64  payload (delta/aid/ctl arg 1/rule) *)
let o_c = 38 (* i64  payload (value/ctl arg 2) *)

(* --- raw little-endian accessors --- *)

let set8 b off v = Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff))

let set16 b off v =
  set8 b off v;
  set8 b (off + 1) (v asr 8)

let set32 b off v =
  set16 b off v;
  set16 b (off + 2) (v asr 16)

let set64 b off v =
  set32 b off v;
  set32 b (off + 4) (v asr 32)

let get8 b off = Char.code (Bytes.unsafe_get b off)
let get16 b off = get8 b off lor (get8 b (off + 1) lsl 8)

let get16_signed b off =
  let v = get16 b off in
  if v >= 0x8000 then v - 0x10000 else v

let get32_signed b off =
  let v = get16 b off lor (get16 b (off + 2) lsl 16) in
  if v >= 0x80000000 then v - 0x100000000 else v

let get48 b off =
  get16 b off lor (get16 b (off + 2) lsl 16) lor (get16 b (off + 4) lsl 32)

let get32_unsigned_lo b off =
  get8 b off
  lor (get8 b (off + 1) lsl 8)
  lor (get8 b (off + 2) lsl 16)
  lor (get8 b (off + 3) lsl 24)

let get64 b off =
  let hi = get8 b (off + 7) in
  let hi = if hi >= 0x80 then hi - 0x100 else hi in
  (hi lsl 56)
  lor (get8 b (off + 6) lsl 48)
  lor (get8 b (off + 5) lsl 40)
  lor (get8 b (off + 4) lsl 32)
  lor get32_unsigned_lo b off

(* --- slot codec --- *)

(* The hot-path encoder issues six unaligned 64-bit stores instead of 46
   byte stores. [%caml_bytes_set64u] takes an [int64], but the classic
   compiler unboxes a boxed-int argument built in place, so the
   [Int64.of_int]/[logor]/[shift_left] chains below compile to plain
   register ops — no allocation (asserted by the no-alloc parity test).
   Field packing mirrors the slot offsets above: word 24 carries
   kind·aux·a with its top two bytes zero, then the [b] store at 30
   overwrites those two bytes. Bytes 46..47 are never written and stay
   zero from ring initialisation. *)
external set_64u : bytes -> int -> int64 -> unit = "%caml_bytes_set64u"

let encode_slot buf ~off ~seq ~sid ~time ~cause ~nid ~kind ~aux ~a ~b ~c =
  set_64u buf (off + o_seq)
    (Int64.logor (Int64.of_int seq) (Int64.shift_left (Int64.of_int sid) 48));
  set_64u buf (off + o_time) (Int64.of_int time);
  set_64u buf (off + o_cause)
    (Int64.logor (Int64.of_int cause)
       (Int64.shift_left (Int64.of_int (nid land 0xffff)) 48));
  set_64u buf (off + o_kind)
    (Int64.of_int (kind lor (aux lsl 8) lor ((a land 0xffffffff) lsl 16)));
  set_64u buf (off + o_b) (Int64.of_int b);
  set_64u buf (off + o_c) (Int64.of_int c)

let decode_slot buf ~off ~node =
  let seq = get48 buf (off + o_seq) in
  let kind = get8 buf (off + o_kind) in
  let aux = get8 buf (off + o_aux) in
  let a = get32_signed buf (off + o_a) in
  let b = get64 buf (off + o_b) in
  let c = get64 buf (off + o_c) in
  match Event.of_fields ~kind ~aux ~a ~b ~c with
  | Ok body ->
      Ok
        {
          Event.seq;
          time = get64 buf (off + o_time);
          node;
          nid = get16_signed buf (off + o_nid);
          cause = get48 buf (off + o_cause);
          body;
        }
  | Error e -> Error (Printf.sprintf "record seq %d: %s" seq e)

let slot_sid buf ~off = get16 buf (off + o_sid)

let add_slot_of_event buf ~sid (e : Event.t) =
  let s = Bytes.make slot_bytes '\000' in
  let kind, aux, a, b, c = Event.to_fields e.body in
  encode_slot s ~off:0 ~seq:e.seq ~sid ~time:e.time ~cause:e.cause ~nid:e.nid
    ~kind ~aux ~a ~b ~c;
  Buffer.add_bytes buf s

(* --- file framing ---

   magic(6) · slot_bytes u16 · scenario_len u32 · recorded u64 ·
   dropped u64 · nstrings u32 · nrecords u32 · scenario bytes ·
   nstrings × (u16 len · bytes) · nrecords × slot. Records are the
   per-node rings dumped back to back; readers sort by seq, exactly as
   Events_io already does for vw-events/1 lines. *)

type meta = { scenario : string; recorded : int; dropped : int }

let header_fixed = 36 (* magic + the six fixed header fields *)

let add_header buf ~scenario ~recorded ~dropped ~strings ~records =
  Buffer.add_string buf magic;
  let h = Bytes.make (header_fixed - 6) '\000' in
  set16 h 0 slot_bytes;
  set32 h 2 (String.length scenario);
  set64 h 6 recorded;
  set64 h 14 dropped;
  set32 h 22 (List.length strings);
  set32 h 26 records;
  Buffer.add_bytes buf h;
  Buffer.add_string buf scenario;
  List.iter
    (fun s ->
      let l = Bytes.create 2 in
      set16 l 0 (String.length s);
      Buffer.add_bytes buf l;
      Buffer.add_string buf s)
    strings

let is_binary s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic

let of_string s =
  let len = String.length s in
  let err fmt = Printf.ksprintf (fun m -> Error ("vw-events/2: " ^ m)) fmt in
  if not (is_binary s) then err "missing VWEV2 magic"
  else if len < header_fixed then err "truncated header"
  else
    let buf = Bytes.unsafe_of_string s in
    let sb = get16 buf 6 in
    if sb <> slot_bytes then err "slot size %d, expected %d" sb slot_bytes
    else
      let scen_len = get32_signed buf 8 in
      let recorded = get64 buf 12 in
      let dropped = get64 buf 20 in
      let nstrings = get32_signed buf 28 in
      let records = get64 buf 32 land 0xffffffff in
      if scen_len < 0 || nstrings < 0 then err "negative header field"
      else
        let pos = ref (header_fixed + scen_len) in
        if !pos > len then err "truncated scenario name"
        else begin
          let scenario = String.sub s header_fixed scen_len in
          let strings = Array.make (max nstrings 1) "" in
          let rec read_strings i =
            if i >= nstrings then Ok ()
            else if !pos + 2 > len then err "truncated string table"
            else begin
              let l = get16 buf !pos in
              pos := !pos + 2;
              if !pos + l > len then err "truncated string table entry"
              else begin
                strings.(i) <- String.sub s !pos l;
                pos := !pos + l;
                read_strings (i + 1)
              end
            end
          in
          match read_strings 0 with
          | Error _ as e -> e
          | Ok () ->
              if len - !pos <> records * slot_bytes then
                err "expected %d records (%d bytes), found %d bytes" records
                  (records * slot_bytes) (len - !pos)
              else begin
                let rec read_records i acc =
                  if i >= records then
                    Ok
                      (List.sort
                         (fun (x : Event.t) y -> compare x.seq y.seq)
                         acc)
                  else
                    let off = !pos + (i * slot_bytes) in
                    let sid = slot_sid buf ~off in
                    if sid >= nstrings then
                      err "record %d: sid %d outside string table (%d)" i sid
                        nstrings
                    else
                      match decode_slot buf ~off ~node:strings.(sid) with
                      | Ok e -> read_records (i + 1) (e :: acc)
                      | Error m -> Error ("vw-events/2: " ^ m)
                in
                match read_records 0 [] with
                | Ok events -> Ok ({ scenario; recorded; dropped }, events)
                | Error _ as e -> e
              end
        end

let of_events ~scenario ~recorded ~dropped events =
  let tab = Strtab.create () in
  List.iter (fun (e : Event.t) -> ignore (Strtab.intern tab e.node)) events;
  let buf = Buffer.create (128 + (List.length events * slot_bytes)) in
  add_header buf ~scenario ~recorded ~dropped ~strings:(Strtab.to_list tab)
    ~records:(List.length events);
  List.iter
    (fun (e : Event.t) -> add_slot_of_event buf ~sid:(Strtab.intern tab e.node) e)
    events;
  Buffer.contents buf
