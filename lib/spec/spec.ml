type packet = {
  filter : string;
  from_node : string;
  to_node : string;
  dir : [ `Send | `Recv ];
}

type expectation =
  | At_least of packet * int
  | At_most of packet * int
  | Exactly of packet * int
  | After of packet * int * packet * int

type fault =
  | Drop_window of packet * int * int
  | Delay_from of packet * int * float
  | Duplicate_at of packet * int
  | Corrupt_at of packet * int
  | Crash_when of packet * int * string

type t = {
  name : string;
  inactivity_timeout : float option;
  filters : (string * string) list;
  nodes : (string * string * string) list;
  mutable faults : fault list; (* reversed *)
  mutable expectations : expectation list; (* reversed *)
}

let create ~name ?inactivity_timeout ~filters ~nodes () =
  { name; inactivity_timeout; filters; nodes; faults = []; expectations = [] }

let inject t fault = t.faults <- fault :: t.faults
let expect t expectation = t.expectations <- expectation :: t.expectations

let dir_text = function `Send -> "SEND" | `Recv -> "RECV"

(* One shared event counter per observed (packet, endpoint, direction). *)
let counter_name p =
  Printf.sprintf "C_%s_%s_%s_%s" p.filter p.from_node p.to_node
    (match p.dir with `Send -> "S" | `Recv -> "R")

let packet_args p =
  Printf.sprintf "%s, %s, %s, %s" p.filter p.from_node p.to_node (dir_text p.dir)

let duration_ms seconds = Printf.sprintf "%gms" (seconds *. 1000.)

let to_script t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* filter table *)
  add "FILTER_TABLE\n";
  List.iter (fun (name, tuples) -> add "%s: %s\n" name tuples) t.filters;
  add "END\n";
  (* node table *)
  add "NODE_TABLE\n";
  List.iter (fun (name, mac, ip) -> add "%s %s %s\n" name mac ip) t.nodes;
  add "END\n";
  (* scenario *)
  add "SCENARIO %s%s\n" t.name
    (match t.inactivity_timeout with
    | Some s -> " " ^ duration_ms s
    | None -> "");
  let faults = List.rev t.faults in
  let expectations = List.rev t.expectations in
  (* primary counters: every packet any fault or expectation watches *)
  let primaries = Hashtbl.create 8 in
  let watch p =
    let c = counter_name p in
    if not (Hashtbl.mem primaries c) then Hashtbl.replace primaries c p;
    c
  in
  List.iter
    (fun fault ->
      ignore
        (watch
           (match fault with
           | Drop_window (p, _, _)
           | Delay_from (p, _, _)
           | Duplicate_at (p, _)
           | Corrupt_at (p, _)
           | Crash_when (p, _, _) ->
               p)))
    faults;
  (* secondary counters for After expectations, in declaration order *)
  let secondaries = ref [] in
  List.iteri
    (fun i expectation ->
      match expectation with
      | At_least (p, _) | At_most (p, _) | Exactly (p, _) -> ignore (watch p)
      | After (p, _, q, _) ->
          ignore (watch p);
          secondaries := (Printf.sprintf "D%d" i, q) :: !secondaries)
    expectations;
  let secondaries = List.rev !secondaries in
  (* declarations: stable order — sort primary names *)
  let primary_list =
    Hashtbl.fold (fun c p acc -> (c, p) :: acc) primaries []
    |> List.sort compare
  in
  List.iter (fun (c, p) -> add "%s: (%s)\n" c (packet_args p)) primary_list;
  List.iter (fun (d, q) -> add "%s: (%s)\n" d (packet_args q)) secondaries;
  (* init rule *)
  if primary_list <> [] then begin
    add "(TRUE) >>";
    List.iter (fun (c, _) -> add " ENABLE_CNTR( %s );" c) primary_list;
    add "\n"
  end;
  (* fault rules *)
  List.iter
    (fun fault ->
      match fault with
      | Drop_window (p, lo, hi) ->
          add "((%s > %d) && (%s <= %d)) >> DROP( %s );\n" (counter_name p) lo
            (counter_name p) hi (packet_args p)
      | Delay_from (p, n, seconds) ->
          add "((%s > %d)) >> DELAY( %s, %s );\n" (counter_name p) n
            (packet_args p) (duration_ms seconds)
      | Duplicate_at (p, n) ->
          add "((%s = %d)) >> DUP( %s );\n" (counter_name p) n (packet_args p)
      | Corrupt_at (p, n) ->
          add "((%s = %d)) >> MODIFY( %s, RANDOM );\n" (counter_name p) n
            (packet_args p)
      | Crash_when (p, n, node) ->
          add "((%s = %d)) >> FAIL( %s );\n" (counter_name p) n node)
    faults;
  (* expectation rules *)
  let stop_terms = ref [] in
  List.iteri
    (fun i expectation ->
      match expectation with
      | At_least (p, n) ->
          stop_terms := Printf.sprintf "(%s >= %d)" (counter_name p) n :: !stop_terms
      | At_most (p, n) ->
          add "((%s > %d)) >> FLAG_ERROR;\n" (counter_name p) n
      | Exactly (p, n) ->
          add "((%s > %d)) >> FLAG_ERROR;\n" (counter_name p) n;
          stop_terms := Printf.sprintf "(%s >= %d)" (counter_name p) n :: !stop_terms
      | After (p, n, _, m) ->
          let d = Printf.sprintf "D%d" i in
          add "((%s = %d)) >> ENABLE_CNTR( %s );\n" (counter_name p) n d;
          stop_terms := Printf.sprintf "(%s >= %d)" d m :: !stop_terms)
    expectations;
  (match List.rev !stop_terms with
  | [] -> ()
  | terms -> add "(%s) >> STOP;\n" (String.concat " && " terms));
  add "END\n";
  Buffer.contents buf

let generate t = Vw_fsl.Compile.parse_and_compile (to_script t)
