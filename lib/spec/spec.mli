(** Scenario generation from protocol expectations.

    The paper closes with: "as a long term goal ... it will be interesting
    to investigate the possibility of generating the fault injection and
    packet trace analysis scripts directly from the protocol
    specification." This module is that idea in miniature: describe the
    packets a protocol exchanges, the faults to inject, and the bounds its
    responses must respect — and get a complete FSL script, ready for
    {!Vw_fsl.Compile} and {!Vw_core.Scenario}.

    The generator is deliberately conservative: it emits exactly the rule
    shapes the paper's hand-written scripts use (enable-at-start counters,
    re-arming resets, windowed faults, FLAG_ERROR bounds, a STOP
    conjunction), so generated scripts read like the Figures. *)

type packet = {
  filter : string;  (** a name from [filters] *)
  from_node : string;
  to_node : string;
  dir : [ `Send | `Recv ];  (** observation point *)
}

type expectation =
  | At_least of packet * int
      (** the scenario only STOPs once this count is reached; with an
          inactivity timeout, not reaching it is a failure *)
  | At_most of packet * int  (** exceeding [n] flags an error *)
  | Exactly of packet * int  (** both of the above *)
  | After of packet * int * packet * int
      (** [After (p, n, q, m)]: once [p] has been seen [n] times, [q] must
          subsequently be seen [m] times (counted from that moment) for the
          scenario to STOP — the causality shape of the Figure 6 script *)

type fault =
  | Drop_window of packet * int * int
      (** [Drop_window (p, lo, hi)]: drop occurrences [lo+1 .. hi] of [p]
          (the Figure 5 "drop the first SYNACK" is [Drop_window (p, 0, 1)]) *)
  | Delay_from of packet * int * float
      (** delay every occurrence after the [n]th by the given seconds *)
  | Duplicate_at of packet * int  (** duplicate exactly the [n]th occurrence *)
  | Corrupt_at of packet * int  (** randomly corrupt the [n]th occurrence *)
  | Crash_when of packet * int * string
      (** FAIL the named node when [p]'s count reaches [n] *)

type t

val create :
  name:string ->
  ?inactivity_timeout:float ->
  filters:(string * string) list ->
  nodes:(string * string * string) list ->
  unit ->
  t
(** [filters] are (name, tuple-list-text) pairs, e.g.
    [("udp_ping", "(34 2 0x1388), (36 2 0x1389)")]; [nodes] are
    (name, mac, ip) triples. *)

val inject : t -> fault -> unit
val expect : t -> expectation -> unit

val to_script : t -> string
(** Render the FSL script. Counters are shared between expectations and
    faults that watch the same packets. With no [At_least]/[Exactly]/
    [After] expectation, no STOP rule is emitted (the scenario runs to its
    time budget, like the paper's Figure 5). *)

val generate :
  t -> (Vw_fsl.Tables.t, string) result
(** [to_script] followed by {!Vw_fsl.Compile.parse_and_compile} — the
    generated text must always compile; an [Error] here is a generator
    bug. *)
