(* Regression testing: one scenario library, many protocol versions.
   Run with: dune exec examples/regression.exe

   The paper's motivation section complains that with ad-hoc kernel
   instrumentation "each new release of the same protocol often requires
   recreating the test cases afresh". This example is the counterpoint: a
   small scenario suite (the Figure 5 congestion test plus two extra
   invariant checks) is run unchanged against a matrix of TCP builds, like
   a CI job would. *)

open Vw_sim
module Tcp = Vw_tcp.Tcp
module Host = Vw_stack.Host
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario

(* An extra scenario: under a lossy spell (we drop a window of data
   packets), the sender must retransmit — the wire must show at most a
   bounded number of data packets while the drops are active, and traffic
   must resume after. Expressible entirely as counters. *)
let loss_recovery_script =
  {|
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
TCP_ack: (34 2 0x4000), (36 2 0x6000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:46:61:af:fe:23 192.168.1.1
node2 00:23:31:df:af:12 192.168.1.2
END
SCENARIO loss_recovery
DATA_AT_RCV: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA_AT_RCV );
/* eat packets 20..24 at the receiver: the sender must recover */
((DATA_AT_RCV >= 20) && (DATA_AT_RCV < 25)) >> DROP( TCP_data, node1, node2, RECV );
/* if recovery works, the receiver eventually sees the full stream */
((DATA_AT_RCV = 60)) >> STOP;
END
|}

(* A liveness scenario: the connection must actually move data — guards
   against a build that wedges silently. *)
let liveness_script =
  {|
FILTER_TABLE
TCP_data: (34 2 0x6000), (36 2 0x4000), (47 1 0x10 0x10)
END
NODE_TABLE
node1 00:46:61:af:fe:23 192.168.1.1
node2 00:23:31:df:af:12 192.168.1.2
END
SCENARIO liveness 2sec
DATA: (TCP_data, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( DATA );
((DATA = 40)) >> STOP;
END
|}

let scenarios =
  [
    ("figure-5 congestion model", Vw_scripts.tcp_ss_ca, 30_000);
    ("loss recovery", loss_recovery_script, 60_000);
    ("liveness", liveness_script, 60_000);
  ]

let versions =
  [
    ("v1.0 (correct)", Tcp.default_config);
    ( "v1.1 (drops congestion avoidance)",
      { Tcp.default_config with broken_no_congestion_avoidance = true } );
    ( "v1.2 (ignores cwnd)",
      { Tcp.default_config with broken_ignore_cwnd = true } );
    ("v2.0 (correct, mss 536)", { Tcp.default_config with mss = 536 });
  ]

let run_one ~script ~config ~bytes =
  let tables =
    match Vw_fsl.Compile.parse_and_compile script with
    | Ok t -> t
    | Error e -> failwith e
  in
  let testbed = Testbed.of_node_table tables in
  let workload tb =
    let node1 = Testbed.node tb "node1" in
    let node2 = Testbed.node tb "node2" in
    ignore
      (Tcp.listen (Testbed.tcp node2) ~port:0x4000 ~on_accept:(fun conn ->
           Tcp.on_data conn (fun _ -> ())));
    let conn =
      Tcp.connect ~config (Testbed.tcp node1) ~src_port:0x6000
        ~dst:(Host.ip (Testbed.host node2))
        ~dst_port:0x4000
    in
    Tcp.on_established conn (fun () -> Tcp.send conn (Bytes.create bytes))
  in
  match
    Scenario.run testbed ~script ~max_duration:(Simtime.sec 30.0) ~workload
  with
  | Error e -> failwith e
  | Ok result -> result

let () =
  Printf.printf "%-36s" "";
  List.iter (fun (name, _, _) -> Printf.printf " %-26s" name) scenarios;
  print_newline ();
  List.iter
    (fun (version, config) ->
      Printf.printf "%-36s" version;
      List.iter
        (fun (_, script, bytes) ->
          let result = run_one ~script ~config ~bytes in
          let cell =
            if Scenario.passed result then "PASS"
            else
              Printf.sprintf "FAIL(%s%s)"
                (match result.Scenario.outcome with
                | Scenario.Timed_out -> "timeout"
                | Scenario.Stopped | Scenario.Ran_to_limit -> "errors")
                (match result.Scenario.errors with
                | [] -> ""
                | errs -> Printf.sprintf ",%d" (List.length errs))
          in
          Printf.printf " %-26s" cell)
        scenarios;
      print_newline ())
    versions;
  print_newline ();
  print_endline
    "Every cell reused the same scripts verbatim — regression testing of\n\
     protocol implementations without touching their code."
