(* A web-server-cluster scenario (the testbed family the paper's §3.1
   motivates): a client fetches from web1 until VirtualWire crashes it,
   then fails over to web2. The FSL script injects the crash after the
   third response and verifies — purely from the wire — that the standby
   actually takes over.

   Run with: dune exec examples/http_failover.exe *)

open Vw_sim
module Host = Vw_stack.Host
module Http = Vw_apps.Http
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario

(* HTTP response bodies travel from server port 80 (0x0050 at frame offset
   34) as PSH-flagged data segments (0x08 in the TCP flags at offset 47) —
   matching on PSH counts pages rather than every ack of the exchange. The
   same filter serves both servers; the counters' node endpoints tell them
   apart. *)
let script =
  {|
FILTER_TABLE
http_resp: (34 2 0x0050), (47 1 0x08 0x08)
END
NODE_TABLE
client 02:00:00:00:00:01 10.0.0.1
web1 02:00:00:00:00:02 10.0.0.2
web2 02:00:00:00:00:03 10.0.0.3
END
SCENARIO http_failover 3sec
RESP1: (http_resp, web1, client, RECV)
RESP2: (http_resp, web2, client, RECV)
(TRUE) >> ENABLE_CNTR( RESP1 ); ENABLE_CNTR( RESP2 );
/* fault: crash the primary after it has served three responses */
((RESP1 = 3)) >> FAIL( web1 );
/* analysis: the standby must end up serving; two responses prove it */
((RESP2 = 2)) >> STOP;
END
|}

let () =
  let tables =
    match Vw_fsl.Compile.parse_and_compile script with
    | Ok t -> t
    | Error e -> failwith e
  in
  let testbed = Testbed.of_node_table tables in
  let fetched = ref [] in
  let failovers = ref 0 in

  let workload tb =
    let engine = Testbed.engine tb in
    let client = Testbed.tcp (Testbed.node tb "client") in
    let web1 = Testbed.node tb "web1" in
    let web2 = Testbed.node tb "web2" in
    let serve name = fun req ->
      Http.response (Printf.sprintf "%s:%s" name req.Http.path)
    in
    ignore
      (Http.Server.start (Testbed.tcp web1) ~port:80 ~handler:(serve "web1"));
    ignore
      (Http.Server.start (Testbed.tcp web2) ~port:80 ~handler:(serve "web2"));
    let servers =
      [| Host.ip (Testbed.host web1); Host.ip (Testbed.host web2) |]
    in
    let current = ref 0 in
    let rec fetch i =
      if i <= 8 then
        Http.Client.get client ~timeout:(Simtime.ms 800)
          ~dst:servers.(!current) ~dst_port:80
          ~path:(Printf.sprintf "/page%d" i)
          (function
            | Ok resp ->
                fetched := resp.Http.resp_body :: !fetched;
                ignore
                  (Engine.schedule_after engine ~delay:(Simtime.ms 50)
                     (fun () -> fetch (i + 1)))
            | Error _ ->
                (* primary is gone: switch to the standby and retry the
                   same page *)
                incr failovers;
                current := 1 - !current;
                fetch i)
    in
    fetch 1
  in

  match Scenario.run testbed ~script ~max_duration:(Simtime.sec 30.0) ~workload with
  | Error e -> failwith e
  | Ok result ->
      Format.printf "%a@." Scenario.pp_result result;
      Printf.printf "client failovers: %d\n" !failovers;
      Printf.printf "pages fetched, in order:\n";
      List.iter (fun body -> Printf.printf "  %s\n" body) (List.rev !fetched);
      if Scenario.passed result then
        print_endline
          "\nPASS: the script crashed web1 mid-service and proved, from\n\
           packets alone, that web2 took over within the deadline."
      else print_endline "\nFAIL: failover not observed"
