(* Conformance scripts: inject frames at scripted sim-times and assert
   what the protocol must deliver, and when (docs/FSL.md, "Conformance").
   Run with: dune exec examples/conformance.exe

   The script below needs no workload at all: two probe frames are
   materialized from the filter's literal byte patterns and injected at
   50 ms and 150 ms; each EXPECT gives the delivery a 20 ms tolerance
   window around its injection time. The same engine behind
   `vwctl conform test/conformance` scores the expectations and, on a
   miss, names the furthest stage the packet reached — here we also run a
   sabotaged variant that DROPs every probe, to show the diagnosis. *)

module Driver = Vw_conform.Driver
module Report = Vw_conform.Report

let passing =
  {|
FILTER_TABLE
probe: (12 2 0x9909), (14 2 0xbeef)
END
NODE_TABLE
alice 02:00:00:00:00:0a 10.0.0.10
bob 02:00:00:00:00:0b 10.0.0.11
END
SCENARIO conformance_demo
PROBE: (probe, alice, bob, RECV)
(TRUE) >> ENABLE_CNTR( PROBE );
END
CONFORM
INJECT probe, alice, bob AT 50ms
INJECT probe, alice, bob AT 150ms
EXPECT probe, alice, bob, RECV AT 50ms WITHIN 20ms
EXPECT probe, alice, bob, RECV AT 150ms WITHIN 20ms
EXPECT STATE PROBE = 2 WITHIN 400ms
END
|}

(* the same scenario with one extra rule: drop every probe at bob *)
let sabotaged =
  {|
FILTER_TABLE
probe: (12 2 0x9909), (14 2 0xbeef)
END
NODE_TABLE
alice 02:00:00:00:00:0a 10.0.0.10
bob 02:00:00:00:00:0b 10.0.0.11
END
SCENARIO conformance_demo_drop
PROBE: (probe, alice, bob, RECV)
(TRUE) >> ENABLE_CNTR( PROBE );
(TRUE) >> DROP probe, alice, bob, RECV;
END
CONFORM
INJECT probe, alice, bob AT 50ms
EXPECT probe, alice, bob, RECV AT 50ms WITHIN 20ms
END
|}

let run ~name ~source =
  match
    Driver.run ~max_duration:(Vw_sim.Simtime.sec 2.0) ~name ~source ()
  with
  | Error errs -> failwith (String.concat "; " errs)
  | Ok r -> Report.of_result r

let () =
  let cases =
    [
      run ~name:"probe round-trip" ~source:passing;
      run ~name:"probe dropped (deliberate)" ~source:sabotaged;
    ]
  in
  Format.printf "%a@." Report.pp cases;
  (* the demo is a smoke test: the clean case must pass, the sabotaged
     case must be missed with a "dropped" diagnosis *)
  match cases with
  | [ good; bad ] ->
      assert good.Report.cs_ok;
      assert (not bad.Report.cs_ok);
      let diag =
        match bad.Report.cs_expects with
        | [ x ] -> x.Report.xr_diagnosis
        | _ -> assert false
      in
      assert (String.length diag > 0);
      Format.printf "diagnosis: %s@." diag
  | _ -> assert false
