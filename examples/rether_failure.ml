(* The paper's Section 6.2 case study: Rether single-node-failure recovery.
   Run with: dune exec examples/rether_failure.exe

   Four nodes circulate the Rether token; node1 streams real-time TCP data
   to node4. The Figure 6 script crashes node3 the moment node2 receives
   the token after 1000 data packets, then verifies on the wire that:
     - node2 sends the token to the dead node exactly 3 times (rule 18
       flags an error on a 4th),
     - the ring reconstructs (token goes node2 -> node4 -> node1),
     - all of it within the 1-second inactivity budget (STOP must fire).

   The fault injection, the crash, and the verification are all in the
   15-line script — the Rether implementation runs unmodified. *)

open Vw_sim
module Tcp = Vw_tcp.Tcp
module Rether = Vw_rether.Rether
module Host = Vw_stack.Host
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario
module Trace = Vw_core.Trace

let run ~label ~broken_no_eviction =
  let tables =
    match Vw_fsl.Compile.parse_and_compile Vw_scripts.rether_failure with
    | Ok t -> t
    | Error e -> failwith e
  in
  let testbed = Testbed.of_node_table tables in
  let ring =
    List.map (fun n -> Host.mac (Testbed.host n)) (Testbed.nodes testbed)
  in
  let config =
    { (Rether.default_config ~ring) with broken_no_eviction }
  in
  let rethers =
    List.map
      (fun n -> (Testbed.name n, Rether.install ~config (Testbed.host n)))
      (Testbed.nodes testbed)
  in
  let workload tb =
    List.iter (fun (nm, r) -> if nm = "node1" then Rether.start r) rethers;
    let node1 = Testbed.node tb "node1" in
    let node4 = Testbed.node tb "node4" in
    ignore
      (Tcp.listen (Testbed.tcp node4) ~port:0x4000 ~on_accept:(fun conn ->
           Tcp.on_data conn (fun _ -> ())));
    let conn =
      Tcp.connect (Testbed.tcp node1) ~src_port:0x6000
        ~dst:(Host.ip (Testbed.host node4))
        ~dst_port:0x4000
    in
    Tcp.on_established conn (fun () ->
        Tcp.send conn (Bytes.create (1200 * 1000)))
  in
  match
    Scenario.run testbed ~script:Vw_scripts.rether_failure
      ~max_duration:(Simtime.sec 120.0) ~workload
  with
  | Error e -> failwith e
  | Ok result ->
      Printf.printf "%-32s -> %s (%s, %d errors)\n" label
        (if Scenario.passed result then "PASS" else "FAIL")
        (Scenario.outcome_to_string result.Scenario.outcome)
        (List.length result.Scenario.errors);
      let node2 = List.assoc "node2" rethers in
      Printf.printf
        "    node2: token sends to node3 after the crash = %d (evictions %d)\n"
        (1 + (Rether.stats node2).Rether.token_retransmissions)
        (Rether.stats node2).Rether.evictions;
      List.iter
        (fun (nm, r) ->
          if nm <> "node3" then
            Printf.printf "    %s ring view: [%s]\n" nm
              (String.concat " "
                 (List.map Vw_net.Mac.to_string (Rether.ring_view r))))
        rethers;
      (testbed, result)

let () =
  print_endline "Figure 6 scenario: kill node3, watch Rether heal the ring.\n";
  let testbed, _ = run ~label:"Rether (correct)" ~broken_no_eviction:false in

  (* show the recovery on the wire: the token frames around the crash *)
  print_endline "\nToken traffic around the failure (from the capture):";
  let is_token (view : Vw_net.Frame_view.t) =
    match view.content with
    | Vw_net.Frame_view.Rether (op, _) -> op = Rether.opcode_token
    | _ -> false
  in
  let token_frames =
    Trace.filter (Testbed.trace testbed) (fun e ->
        e.Trace.dir = `Out && is_token (Vw_net.Frame_view.of_frame e.frame))
  in
  let n = List.length token_frames in
  List.iteri
    (fun i e ->
      if i >= n - 8 then Format.printf "  %a@." Trace.pp_entry e)
    token_frames;

  print_newline ();
  ignore
    (run ~label:"Rether that never evicts (bug)" ~broken_no_eviction:true);
  print_endline
    "\nThe buggy version keeps retransmitting to the corpse; rule 18\n\
     ((TokensFrom2 > 3)) catches it without touching the implementation."
