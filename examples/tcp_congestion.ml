(* The paper's Section 6.1 case study, end to end.
   Run with: dune exec examples/tcp_congestion.exe

   The Figure 5 script drops the first SYNACK at the receiving node, which
   forces the TCP sender through a SYN timeout and into the ssthresh=2 /
   cwnd=1 state; its analysis rules then model the slow-start →
   congestion-avoidance transition packet by packet and flag an error if
   the implementation ever sends more than the model allows (CanTx < 0).

   We run the same unmodified script against three "releases" of the TCP
   implementation: the correct one, one that never switches to congestion
   avoidance, and one that ignores the congestion window entirely. *)

open Vw_sim
module Tcp = Vw_tcp.Tcp
module Host = Vw_stack.Host
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario
module Fie = Vw_engine.Fie

let run_with ~label ~config =
  let tables =
    match Vw_fsl.Compile.parse_and_compile Vw_scripts.tcp_ss_ca with
    | Ok t -> t
    | Error e -> failwith e
  in
  let testbed = Testbed.of_node_table tables in
  let client = ref None in
  let workload tb =
    let node1 = Testbed.node tb "node1" in
    let node2 = Testbed.node tb "node2" in
    ignore
      (Tcp.listen (Testbed.tcp node2) ~port:0x4000 ~on_accept:(fun conn ->
           Tcp.on_data conn (fun _ -> ())));
    let conn =
      Tcp.connect ~config (Testbed.tcp node1) ~src_port:0x6000
        ~dst:(Host.ip (Testbed.host node2))
        ~dst_port:0x4000
    in
    Tcp.on_established conn (fun () -> Tcp.send conn (Bytes.create 30_000));
    client := Some conn
  in
  match
    Scenario.run testbed ~script:Vw_scripts.tcp_ss_ca
      ~max_duration:(Simtime.sec 30.0) ~workload
  with
  | Error e -> failwith e
  | Ok result ->
      let conn = Option.get !client in
      let verdict = if Scenario.passed result then "PASS" else "FAIL" in
      Printf.printf "%-34s -> %s (%d error reports)\n" label verdict
        (List.length result.Scenario.errors);
      Printf.printf
        "    implementation: ssthresh=%d cwnd=%d timeouts=%d segments=%d\n"
        (Tcp.ssthresh conn) (Tcp.cwnd conn)
        (Tcp.stats conn).Tcp.timeouts
        (Tcp.stats conn).Tcp.segments_sent;
      let fie1 = Testbed.fie (Testbed.node testbed "node1") in
      (match
         ( Fie.counter_value fie1 "CWND",
           Fie.counter_value fie1 "SSTHRESH",
           Fie.counter_value fie1 "CanTx" )
       with
      | Some cwnd, Some ssthresh, Some cantx ->
          Printf.printf
            "    script's model:  CWND=%d SSTHRESH=%d CanTx=%d\n" cwnd ssthresh
            cantx
      | _ -> ());
      (conn, result)

let () =
  print_endline
    "Figure 5 scenario: drop one SYNACK, verify the slow-start ->";
  print_endline "congestion-avoidance transition. Same script, three TCPs.\n";
  let correct, _ = run_with ~label:"TCP (correct)" ~config:Tcp.default_config in
  Printf.printf "\n    cwnd trajectory of the correct TCP:\n      ";
  List.iter
    (fun (t, cwnd) ->
      Printf.printf "%.0fms:%d " (Simtime.to_ms t) cwnd)
    (Tcp.cwnd_history correct);
  print_newline ();
  print_newline ();
  ignore
    (run_with ~label:"TCP without congestion avoidance"
       ~config:
         { Tcp.default_config with broken_no_congestion_avoidance = true });
  print_newline ();
  ignore
    (run_with ~label:"TCP ignoring cwnd"
       ~config:{ Tcp.default_config with broken_ignore_cwnd = true });
  print_newline ();
  print_endline
    "The analysis script needed no knowledge of the implementation's";
  print_endline
    "internals — it watched the wire, exactly as the paper describes."
