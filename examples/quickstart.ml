(* Quickstart: the smallest end-to-end VirtualWire session.
   Run with: dune exec examples/quickstart.exe

   Two hosts exchange UDP ping/pong. The FSL script below injects two
   faults — it silently eats pings 3 and 4 at the receiver, and duplicates
   pong 6 on its way out — while counting everything it sees. No change to
   the ping/pong application is needed: that is the paper's whole point. *)

open Vw_sim
module Host = Vw_stack.Host
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario
module Trace = Vw_core.Trace
module Fie = Vw_engine.Fie

(* 1. The test scenario, written in FSL (Section 4 of the paper).
      Filters match raw frame bytes: UDP source port at offset 34,
      destination port at offset 36. *)
let script =
  {|
FILTER_TABLE
udp_ping: (34 2 0x1388), (36 2 0x1389)
udp_pong: (34 2 0x1389), (36 2 0x1388)
END
NODE_TABLE
alice 02:00:00:00:00:0a 10.0.0.10
bob 02:00:00:00:00:0b 10.0.0.11
END
SCENARIO quickstart_drop_dup
PING: (udp_ping, alice, bob, RECV)
PONG: (udp_pong, bob, alice, SEND)
(TRUE) >> ENABLE_CNTR( PING ); ENABLE_CNTR( PONG );
((PING > 2) && (PING <= 4)) >> DROP( udp_ping, alice, bob, RECV );
((PONG = 6)) >> DUP( udp_pong, bob, alice, SEND );
END
|}

let () =
  (* 2. Build a testbed with the scenario's two nodes on a switched LAN. *)
  let testbed =
    Testbed.create
      [
        ("alice", Vw_net.Mac.of_string "02:00:00:00:00:0a",
         Vw_net.Ip_addr.of_string "10.0.0.10");
        ("bob", Vw_net.Mac.of_string "02:00:00:00:00:0b",
         Vw_net.Ip_addr.of_string "10.0.0.11");
      ]
  in

  (* 3. The application under test: a plain UDP ping/pong pair. It knows
        nothing about VirtualWire. *)
  let pings_received = ref 0 and pongs_received = ref 0 in
  let workload tb =
    let engine = Testbed.engine tb in
    let alice = Testbed.host (Testbed.node tb "alice") in
    let bob = Testbed.host (Testbed.node tb "bob") in
    Host.udp_bind bob ~port:5001 (fun ~src ~src_port payload ->
        incr pings_received;
        Host.udp_send bob ~src_port:5001 ~dst:src ~dst_port:src_port payload);
    Host.udp_bind alice ~port:5000 (fun ~src:_ ~src_port:_ _ ->
        incr pongs_received);
    for i = 0 to 9 do
      ignore
        (Engine.schedule_after engine
           ~delay:(i * Simtime.ms 5)
           (fun () ->
             Host.udp_send alice ~src_port:5000
               ~dst:(Host.ip bob) ~dst_port:5001
               (Bytes.of_string (Printf.sprintf "ping-%d" (i + 1)))))
    done
  in

  (* 4. Run the scenario: compile the script on the control node, ship the
        six tables, START, drive the workload. *)
  (match
     Scenario.run testbed ~script ~max_duration:(Simtime.sec 2.0) ~workload
   with
  | Error e -> failwith e
  | Ok result ->
      Format.printf "%a@." Scenario.pp_result result;
      Printf.printf "alice sent 10 pings; bob saw %d (two were eaten)\n"
        !pings_received;
      Printf.printf "bob answered %d; alice saw %d (one was doubled)\n"
        !pings_received !pongs_received);

  (* 5. Inspect what the engines counted and what crossed the wire. *)
  let bob_fie = Testbed.fie (Testbed.node testbed "bob") in
  (match
     (Fie.counter_value bob_fie "PING", Fie.counter_value bob_fie "PONG")
   with
  | Some ping, Some pong ->
      Printf.printf "FAE counters at bob: PING=%d PONG=%d\n" ping pong
  | _ -> ());
  let trace = Testbed.trace testbed in
  Printf.printf "\nLast six frames of the capture (tcpdump replacement):\n";
  let entries = Trace.entries trace in
  let tail = List.filteri (fun i _ -> i >= List.length entries - 6) entries in
  List.iter (fun e -> Format.printf "  %a@." Trace.pp_entry e) tail
