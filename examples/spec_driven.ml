(* Scenario generation from a protocol expectation — the paper's stated
   long-term goal, demonstrated: no FSL is written by hand here. We state
   WHAT must happen (faults to inject, bounds the responses must respect)
   and the generator produces the script, which then runs like any other.

   Run with: dune exec examples/spec_driven.exe *)

module Spec = Vw_spec.Spec
module Host = Vw_stack.Host
module Testbed = Vw_core.Testbed
module Scenario = Vw_core.Scenario
open Vw_sim

let ping =
  { Spec.filter = "udp_ping"; from_node = "alice"; to_node = "bob"; dir = `Recv }

let pong =
  { Spec.filter = "udp_pong"; from_node = "bob"; to_node = "alice"; dir = `Send }

let () =
  (* the "protocol specification": a request/response service under a
     burst of loss must still answer, and must never answer more than
     once per request *)
  let spec =
    Spec.create ~name:"generated_loss_burst" ~inactivity_timeout:1.0
      ~filters:
        [
          ("udp_ping", "(34 2 0x1388), (36 2 0x1389)");
          ("udp_pong", "(34 2 0x1389), (36 2 0x1388)");
        ]
      ~nodes:
        [
          ("alice", "02:00:00:00:00:0a", "10.0.0.10");
          ("bob", "02:00:00:00:00:0b", "10.0.0.11");
        ]
      ()
  in
  Spec.inject spec (Spec.Drop_window (ping, 3, 6));
  Spec.expect spec (Spec.At_least (ping, 8));
  Spec.expect spec (Spec.At_most (pong, 20));
  Spec.expect spec (Spec.After (ping, 8, pong, 2));

  let script = Spec.to_script spec in
  print_endline "Generated FSL script:";
  print_endline "---------------------";
  print_string script;
  print_endline "---------------------";

  let tables =
    match Vw_fsl.Compile.parse_and_compile script with
    | Ok t -> t
    | Error e -> failwith ("generator bug: " ^ e)
  in
  let testbed = Testbed.of_node_table tables in
  let workload tb =
    let engine = Testbed.engine tb in
    let alice = Testbed.host (Testbed.node tb "alice") in
    let bob = Testbed.host (Testbed.node tb "bob") in
    Host.udp_bind bob ~port:0x1389 (fun ~src ~src_port payload ->
        Host.udp_send bob ~src_port:0x1389 ~dst:src ~dst_port:src_port payload);
    Host.udp_bind alice ~port:0x1388 (fun ~src:_ ~src_port:_ _ -> ());
    for i = 0 to 11 do
      ignore
        (Engine.schedule_after engine
           ~delay:(i * Simtime.ms 10)
           (fun () ->
             Host.udp_send alice ~src_port:0x1388 ~dst:(Host.ip bob)
               ~dst_port:0x1389 (Bytes.create 32)))
    done
  in
  match Scenario.run testbed ~script ~max_duration:(Simtime.sec 10.0) ~workload with
  | Error e -> failwith e
  | Ok result ->
      Format.printf "@.%a@." Scenario.pp_result result;
      print_endline
        (if Scenario.passed result then
           "PASS: the generated scenario injected the loss burst and \
            verified the bounds."
         else "FAIL")
